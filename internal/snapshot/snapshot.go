// Package snapshot defines the versioned, digest-stamped serialization of
// complete mid-run engine state: the discrete-event queue (as rearmable
// owner/payload records), every RNG stream, the fleet and inventory-mirror
// overlays, counters, the event log, and the telemetry store.
//
// A snapshot is pure data — no function values, no pointers into the live
// simulation — so it serializes with encoding/gob behind a small framed
// header. Restoring is the inverse overlay performed by
// core.RestoreSimulation: the simulation is re-assembled from the
// configuration exactly as at t=0 (the workload generator is deterministic,
// so regenerating the instance sequence reproduces the arrival plan
// bit-for-bit), then the snapshot overlays the dynamic state and the engine
// queue is re-armed through the rearmer table keyed by each event's owner.
// The restored run continues bit-identically to the uninterrupted one.
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"

	"sapsim/internal/events"
	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
)

// FormatVersion is bumped whenever the serialized layout changes
// incompatibly; Decode rejects snapshots from other versions.
const FormatVersion = 1

// magic frames a snapshot stream. The trailing byte is the format version's
// low byte so even pre-header readers fail loudly on a version mismatch.
var magic = [8]byte{'S', 'A', 'P', 'S', 'N', 'A', 'P', FormatVersion}

// VMState is the dynamic overlay for one arrived workload instance. The
// static side (ID, project, profile, creation time, planned lifetime) is
// regenerated from the seed; only what the run mutated is recorded.
type VMState struct {
	// Flavor is the VM's current flavor name (differs from the generated
	// one after a resize).
	Flavor string
	// State is the vmmodel.State ordinal.
	State int
	// Node is the resident node ID, empty when unplaced (failed placement,
	// lost to a failed evacuation, or deleted).
	Node string
	// Live marks membership in the live set (a pending deletion event may
	// still reference a lost VM, which is not live).
	Live       bool
	PlacedAt   sim.Time
	DeletedAt  sim.Time
	Migrations int
}

// Counters carries the run's scalar accumulators.
type Counters struct {
	PlacementFailures int
	Resizes           int
	DRSMigrations     int
	DRSPasses         int
	CrossBBMoves      int
}

// SchedulerState carries the Nova scheduler's counters and its decision
// inputs that persist across placements.
type SchedulerState struct {
	Scheduled  int
	Failed     int
	Retries    int
	Eliminated map[string]int
	// Contention is the per-BB contention view fed by the sampler
	// (Config.ContentionFeed), keyed by building-block ID.
	Contention map[string]float64
}

// Snapshot is the complete mid-run state of a core.Simulation, captured at
// an engine-idle boundary (between AdvanceTo segments, never inside a
// handler).
type Snapshot struct {
	// At is the capture time.
	At sim.Time
	// Fingerprint identifies the configuration the snapshot belongs to;
	// Restore refuses a mismatching config (a snapshot is only meaningful
	// against the deterministic re-assembly of the same run).
	Fingerprint string
	// NumInjectors is how many of the restoring config's injectors existed
	// at capture time. A restoring config may append further injectors —
	// that is the branching mechanism — but the first NumInjectors must
	// match the captured run.
	NumInjectors int
	// Engine is the captured event queue, clock, and counters.
	Engine sim.EngineState
	// Arrived is how many workload instances (in generation order) had
	// arrived by At; VMs holds their dynamic overlays, index-aligned.
	Arrived int
	VMs     []VMState
	// Down holds the scenario layer's out-of-service claim counts per node.
	Down map[string]int
	// RNGs holds the marshaled state of every registered live RNG stream,
	// keyed by its registration name.
	RNGs map[string][]byte
	// Counters and Sched carry the scalar accumulators.
	Counters Counters
	Sched    SchedulerState
	// Events is the scheduling-relevant event log up to At.
	Events []events.Event
	// Series is the telemetry store's contents in creation order.
	Series []telemetry.SeriesData
}

// ErrCorrupt is returned when a snapshot stream fails its integrity checks
// (bad magic, digest mismatch, or malformed payload).
var ErrCorrupt = errors.New("snapshot: corrupt snapshot")

// ErrVersion is returned for a structurally sound snapshot written by an
// incompatible format version.
var ErrVersion = errors.New("snapshot: unsupported format version")

// Encode serializes the snapshot: an 8-byte magic (embedding the format
// version), a big-endian uint32 format version, the SHA-256 digest of the
// gob payload, a big-endian uint64 payload length, then the payload. The
// digest stamp makes bit flips and truncation detectable without decoding.
func Encode(w io.Writer, s *Snapshot) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(s); err != nil {
		return fmt.Errorf("snapshot: encode: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())
	var hdr [8 + 4 + sha256.Size + 8]byte
	copy(hdr[:8], magic[:])
	binary.BigEndian.PutUint32(hdr[8:12], FormatVersion)
	copy(hdr[12:12+sha256.Size], sum[:])
	binary.BigEndian.PutUint64(hdr[12+sha256.Size:], uint64(payload.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// EncodeBytes is Encode into a fresh byte slice.
func EncodeBytes(s *Snapshot) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode reads and verifies a snapshot stream: magic, version, digest, and
// length must all check out before the payload is decoded. Corruption —
// truncation, bit flips, trailing garbage in the length field — surfaces as
// ErrCorrupt; a foreign format version as ErrVersion.
func Decode(r io.Reader) (*Snapshot, error) {
	var hdr [8 + 4 + sha256.Size + 8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(hdr[:7], magic[:7]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	ver := binary.BigEndian.Uint32(hdr[8:12])
	if hdr[7] != byte(ver) || ver != FormatVersion {
		return nil, fmt.Errorf("%w: got v%d, want v%d", ErrVersion, ver, FormatVersion)
	}
	var want [sha256.Size]byte
	copy(want[:], hdr[12:12+sha256.Size])
	n := binary.BigEndian.Uint64(hdr[12+sha256.Size:])
	const maxPayload = 16 << 30
	if n > maxPayload {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload: %v", ErrCorrupt, err)
	}
	if sha256.Sum256(payload) != want {
		return nil, fmt.Errorf("%w: payload digest mismatch", ErrCorrupt)
	}
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: gob: %v", ErrCorrupt, err)
	}
	return &s, nil
}

// DecodeBytes is Decode from a byte slice.
func DecodeBytes(b []byte) (*Snapshot, error) {
	return Decode(bytes.NewReader(b))
}

// Digest returns the hex SHA-256 of the snapshot's encoded form — the
// content address a CAS stores the blob under.
func Digest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
