package snapshot

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"sapsim/internal/sim"
)

func testSnapshot() *Snapshot {
	return &Snapshot{
		At:           36 * sim.Hour,
		Fingerprint:  "cfg-fingerprint",
		NumInjectors: 2,
		Arrived:      17,
		VMs: []VMState{
			{Flavor: "m1.large", State: 1, Node: "node-3", Live: true, PlacedAt: sim.Hour},
			{Flavor: "m1.small", State: 2, Live: false, DeletedAt: 30 * sim.Hour, Migrations: 3},
		},
		Down:     map[string]int{"node-9": 1},
		RNGs:     map[string][]byte{"workload": {1, 2, 3}, "drs": {4, 5}},
		Counters: Counters{Resizes: 4, DRSMigrations: 9, DRSPasses: 6},
		Sched:    SchedulerState{Scheduled: 17, Retries: 2, Eliminated: map[string]int{"ram": 5}},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := testSnapshot()
	blob, err := EncodeBytes(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip drifted:\n got %+v\nwant %+v", got, want)
	}
	// Gob encodes map entries in randomized order, so two encodings of the
	// same snapshot need not be byte-equal — which is why blobs are
	// content-addressed AFTER encoding, never by re-encoding. Digest of a
	// given blob is of course stable.
	if d1, d2 := Digest(blob), Digest(blob); d1 != d2 || len(d1) != 64 {
		t.Fatalf("Digest unstable or malformed: %q vs %q", d1, d2)
	}
}

// TestDecodeRejectsDamage: every way a blob can rot in storage or transit
// must surface as ErrCorrupt — never a silent partial decode.
func TestDecodeRejectsDamage(t *testing.T) {
	blob, err := EncodeBytes(testSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	headerLen := 8 + 4 + 32 + 8
	damage := map[string]func([]byte) []byte{
		"empty":            func(b []byte) []byte { return nil },
		"short header":     func(b []byte) []byte { return b[:headerLen-1] },
		"bad magic":        func(b []byte) []byte { b[0] ^= 0xff; return b },
		"truncated":        func(b []byte) []byte { return b[:len(b)-1] },
		"payload bit flip": func(b []byte) []byte { b[headerLen+len(b[headerLen:])/2] ^= 0x01; return b },
		"digest bit flip":  func(b []byte) []byte { b[12] ^= 0x01; return b },
		"length overflow": func(b []byte) []byte {
			binary.BigEndian.PutUint64(b[12+32:], 1<<40)
			return b
		},
	}
	for name, corrupt := range damage {
		t.Run(name, func(t *testing.T) {
			b := corrupt(append([]byte(nil), blob...))
			if _, err := DecodeBytes(b); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	blob, err := EncodeBytes(testSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	skewed := append([]byte(nil), blob...)
	// A coherent future version: both the magic's version byte and the
	// header field agree, so this is version skew, not corruption.
	skewed[7] = FormatVersion + 1
	binary.BigEndian.PutUint32(skewed[8:12], FormatVersion+1)
	if _, err := DecodeBytes(skewed); !errors.Is(err, ErrVersion) {
		t.Fatalf("decode = %v, want ErrVersion", err)
	}
	// A version byte that disagrees with the header field is also skew
	// (the pre-header reader path the magic byte exists for).
	mixed := append([]byte(nil), blob...)
	mixed[7] = FormatVersion + 1
	if _, err := DecodeBytes(mixed); !errors.Is(err, ErrVersion) {
		t.Fatalf("decode = %v, want ErrVersion", err)
	}
}
