package telemetry

import (
	"math"
	"sort"

	"sapsim/internal/sim"
)

// Mean returns the arithmetic mean of the samples, or NaN when empty.
func Mean(samples []Sample) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, s := range samples {
		sum += s.V
	}
	return sum / float64(len(samples))
}

// Max returns the maximum sample value, or NaN when empty.
func Max(samples []Sample) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	max := samples[0].V
	for _, s := range samples[1:] {
		if s.V > max {
			max = s.V
		}
	}
	return max
}

// Min returns the minimum sample value, or NaN when empty.
func Min(samples []Sample) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	min := samples[0].V
	for _, s := range samples[1:] {
		if s.V < min {
			min = s.V
		}
	}
	return min
}

// Percentile returns the p-th percentile (0..100) of the sample values using
// linear interpolation between order statistics, or NaN when empty. The
// paper reports 95th percentiles throughout (Figs. 8 and 9).
func Percentile(samples []Sample, p float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	return PercentileValues(valuesOf(samples), p)
}

// PercentileValues is Percentile over a plain value slice. The input is
// copied, not mutated.
func PercentileValues(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func valuesOf(samples []Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s.V
	}
	return out
}

// DailyStat is one day's aggregate of a series, used for heatmap rows and
// the daily mean/p95/max lines in Figures 8 and 9.
type DailyStat struct {
	Day  int // 0-based day index since the observation epoch
	Mean float64
	Max  float64
	Min  float64
	P95  float64
	N    int // sample count; 0 marks missing data (white heatmap cells)
}

// DailyStats buckets the series into per-day aggregates over days
// [0, days). Days without samples yield N == 0 and NaN statistics.
func DailyStats(s *Series, days int) []DailyStat {
	out := make([]DailyStat, days)
	for d := 0; d < days; d++ {
		from := sim.Time(d) * sim.Day
		to := from + sim.Day
		win := s.Range(from, to)
		st := DailyStat{Day: d, N: len(win)}
		if len(win) == 0 {
			st.Mean, st.Max, st.Min, st.P95 = math.NaN(), math.NaN(), math.NaN(), math.NaN()
		} else {
			st.Mean = Mean(win)
			st.Max = Max(win)
			st.Min = Min(win)
			st.P95 = Percentile(win, 95)
		}
		out[d] = st
	}
	return out
}

// MeanOverRange returns the mean of the series restricted to [from, to), or
// NaN if no samples fall in the window.
func MeanOverRange(s *Series, from, to sim.Time) float64 {
	return Mean(s.Range(from, to))
}

// Downsample reduces a series to one mean sample per step, anchored at the
// start of each step. It is the Thanos-style compaction used before
// long-range queries.
func Downsample(s *Series, step sim.Time) []Sample {
	if step <= 0 || len(s.Samples) == 0 {
		return nil
	}
	var out []Sample
	cur := (s.Samples[0].T / step) * step
	sum, n := 0.0, 0
	flush := func() {
		if n > 0 {
			out = append(out, Sample{T: cur, V: sum / float64(n)})
		}
	}
	for _, smp := range s.Samples {
		bucket := (smp.T / step) * step
		if bucket != cur {
			flush()
			cur = bucket
			sum, n = 0, 0
		}
		sum += smp.V
		n++
	}
	flush()
	return out
}
