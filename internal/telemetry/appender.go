package telemetry

import (
	"errors"

	"sapsim/internal/sim"
)

// pendingSample is one buffered write, pre-hashed at Append time so Commit
// only routes and applies.
type pendingSample struct {
	metric string
	labels Labels
	hash   uint64
	t      sim.Time
	v      float64
}

// Appender batches writes to the store, Telegraf-style: callers buffer a
// sampling sweep (or a whole scrape) and Commit applies it with one lock
// acquisition per touched shard, instead of one per sample. An Appender is
// not safe for concurrent use; give each writer goroutine its own.
type Appender struct {
	st      *Store
	buf     [shardCount][]pendingSample
	pending int
}

// Appender returns a new batch writer bound to the store.
func (st *Store) Appender() *Appender {
	return &Appender{st: st}
}

// Append buffers one sample. Nothing is visible to readers until Commit.
func (a *Appender) Append(metric string, labels Labels, t sim.Time, v float64) {
	hash := hashSeries(metric, labels)
	i := hash & (shardCount - 1)
	a.buf[i] = append(a.buf[i], pendingSample{metric: metric, labels: labels, hash: hash, t: t, v: v})
	a.pending++
}

// Pending reports the number of buffered samples.
func (a *Appender) Pending() int { return a.pending }

// Commit flushes the buffer and reports how many samples landed. Samples
// apply in per-shard append order; each shard lock is taken exactly once.
// Out-of-order samples are rejected individually — the rest of the batch
// still lands — and reported joined. The buffer is reusable after Commit
// regardless of errors.
func (a *Appender) Commit() (int, error) {
	applied := 0
	var errs []error
	for i := range a.buf {
		pend := a.buf[i]
		if len(pend) == 0 {
			continue
		}
		sh := &a.st.shards[i]
		sh.mu.Lock()
		for _, p := range pend {
			s := a.st.getOrCreate(sh, p.hash, p.metric, p.labels)
			if err := s.appendSample(p.t, p.v); err != nil {
				errs = append(errs, err)
			} else {
				applied++
			}
		}
		sh.mu.Unlock()
		a.buf[i] = pend[:0]
	}
	a.pending = 0
	return applied, errors.Join(errs...)
}
