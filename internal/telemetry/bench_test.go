package telemetry

import (
	"fmt"
	"testing"

	"sapsim/internal/sim"
)

// BenchmarkAppend measures the ingestion hot path (every scraped sample
// passes through Append).
func BenchmarkAppend(b *testing.B) {
	st := NewStore()
	labels := make([]Labels, 100)
	for i := range labels {
		labels[i] = MustLabels("hostsystem", fmt.Sprintf("n%03d", i), "cluster", "bb-0")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Append("cpu", labels[i%100], sim.Time(i)*sim.Second, float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDailyStats measures the heatmap aggregation over a 30-day,
// 5-minute-resolution series.
func BenchmarkDailyStats(b *testing.B) {
	s := &Series{}
	for i := 0; i < 30*288; i++ {
		s.Samples = append(s.Samples, Sample{T: sim.Time(i) * 5 * sim.Minute, V: float64(i % 97)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DailyStats(s, 30)
	}
}

// BenchmarkPercentile measures the p95 computation used throughout the
// Fig. 8/9 analyses.
func BenchmarkPercentile(b *testing.B) {
	samples := make([]Sample, 8640)
	for i := range samples {
		samples[i] = Sample{T: sim.Time(i), V: float64((i * 7919) % 1000)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Percentile(samples, 95)
	}
}
