package telemetry

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"sapsim/internal/sim"
)

// BenchmarkAppend measures the ingestion hot path (every scraped sample
// passes through Append).
func BenchmarkAppend(b *testing.B) {
	st := NewStore()
	labels := make([]Labels, 100)
	for i := range labels {
		labels[i] = MustLabels("hostsystem", fmt.Sprintf("n%03d", i), "cluster", "bb-0")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Append("cpu", labels[i%100], sim.Time(i)*sim.Second, float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreAppend measures concurrent batched ingestion: 8 writer
// goroutines, each with its own Appender over a disjoint label set,
// flushing every 64 samples — the shape of the simulator's sampling sweep
// and the scraper's per-target batches. On the old single-mutex store this
// serialized completely; the sharded store scales with shard count.
func BenchmarkStoreAppend(b *testing.B) {
	st := NewStore()
	// RunParallel spawns p*GOMAXPROCS goroutines; aim for ≥8 writers.
	if p := (8 + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0); p > 1 {
		b.SetParallelism(p)
	}
	var writer atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		w := writer.Add(1)
		app := st.Appender()
		labels := make([]Labels, 32)
		for i := range labels {
			labels[i] = MustLabels(
				"hostsystem", fmt.Sprintf("w%d-n%03d", w, i),
				"cluster", fmt.Sprintf("bb-%d", i/8),
			)
		}
		t, n := sim.Time(0), 0
		for pb.Next() {
			app.Append("cpu", labels[n%len(labels)], t, float64(n))
			n++
			if n%len(labels) == 0 {
				t += 5 * sim.Minute
			}
			if app.Pending() >= 64 {
				// b.Fatal must not be called from RunParallel goroutines.
				if _, err := app.Commit(); err != nil {
					b.Error(err)
					return
				}
			}
		}
		if _, err := app.Commit(); err != nil {
			b.Error(err)
		}
	})
}

// benchSelectStore builds a store with `total` series spread over many
// metrics, of which exactly `matching` belong to the queried metric.
func benchSelectStore(b *testing.B, matching, total int) *Store {
	b.Helper()
	st := NewStore()
	app := st.Appender()
	for i := 0; i < matching; i++ {
		app.Append("target", MustLabels("hostsystem", fmt.Sprintf("n%04d", i)), 0, 1)
	}
	for i := matching; i < total; i++ {
		metric := fmt.Sprintf("other_%02d", i%97)
		app.Append(metric, MustLabels("hostsystem", fmt.Sprintf("n%04d", i)), 0, 1)
	}
	if _, err := app.Commit(); err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkStoreSelect shows Select cost tracking the matching series
// count, not the store size: the /10k variants hold results constant while
// the store grows 10×. The old store scanned all series per Select.
func BenchmarkStoreSelect(b *testing.B) {
	for _, tc := range []struct {
		name            string
		matching, total int
	}{
		{"10match_1k_total", 10, 1_000},
		{"10match_10k_total", 10, 10_000},
		{"100match_1k_total", 100, 1_000},
		{"100match_10k_total", 100, 10_000},
	} {
		b.Run(tc.name, func(b *testing.B) {
			st := benchSelectStore(b, tc.matching, tc.total)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := st.Select("target"); len(got) != tc.matching {
					b.Fatalf("Select = %d series, want %d", len(got), tc.matching)
				}
			}
		})
	}
}

// BenchmarkStoreSelectMatcher exercises the label-value index: one node
// out of 2,000 of the same metric.
func BenchmarkStoreSelectMatcher(b *testing.B) {
	st := NewStore()
	app := st.Appender()
	for i := 0; i < 2000; i++ {
		app.Append("cpu", MustLabels("hostsystem", fmt.Sprintf("n%04d", i)), 0, 1)
	}
	if _, err := app.Commit(); err != nil {
		b.Fatal(err)
	}
	m := Matcher{Name: "hostsystem", Value: "n1234"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := st.Select("cpu", m); len(got) != 1 {
			b.Fatalf("Select = %d series, want 1", len(got))
		}
	}
}

// BenchmarkDailyStats measures the heatmap aggregation over a 30-day,
// 5-minute-resolution series.
func BenchmarkDailyStats(b *testing.B) {
	s := &Series{}
	for i := 0; i < 30*288; i++ {
		s.Samples = append(s.Samples, Sample{T: sim.Time(i) * 5 * sim.Minute, V: float64(i % 97)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DailyStats(s, 30)
	}
}

// BenchmarkPercentile measures the p95 computation used throughout the
// Fig. 8/9 analyses.
func BenchmarkPercentile(b *testing.B) {
	samples := make([]Sample, 8640)
	for i := range samples {
		samples[i] = Sample{T: sim.Time(i), V: float64((i * 7919) % 1000)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Percentile(samples, 95)
	}
}
