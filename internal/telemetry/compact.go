package telemetry

import (
	"sapsim/internal/sim"
)

// Compaction mirrors the long-term-storage role Thanos plays above
// Prometheus in the paper's monitoring stack (Sec. 4): raw high-resolution
// samples are kept for a recent window, while older data is downsampled to
// coarse means so month-scale queries stay cheap. Both retention passes
// work shard-by-shard, holding each shard's write lock exactly once, and
// always replace sample slices wholesale so outstanding Select snapshots
// keep observing the pre-compaction data.

// DropBefore removes all samples strictly older than cutoff, enforcing a
// retention limit. It reports the number of samples removed. Series left
// empty are removed from the store and unlinked from every index.
func (st *Store) DropBefore(cutoff sim.Time) int {
	removed := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		var dead []*memSeries
		for _, chain := range sh.series {
			for _, s := range chain {
				n := 0
				for n < len(s.samples) && s.samples[n].T < cutoff {
					n++
				}
				if n == 0 {
					continue
				}
				removed += n
				s.samples = append([]Sample(nil), s.samples[n:]...)
				if len(s.samples) == 0 {
					dead = append(dead, s)
				}
			}
		}
		for _, s := range dead {
			st.removeSeries(sh, s)
		}
		sh.mu.Unlock()
	}
	return removed
}

// Compact downsamples every sample older than olderThan to one mean sample
// per step, keeping newer samples at full resolution. It reports the net
// reduction in sample count. Compaction preserves per-bucket means, so
// daily aggregates (the unit of every heatmap) are unchanged for
// bucket-aligned steps.
func (st *Store) Compact(olderThan sim.Time, step sim.Time) int {
	if step <= 0 {
		return 0
	}
	reduced := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for _, chain := range sh.series {
			for _, s := range chain {
				cut := 0
				for cut < len(s.samples) && s.samples[cut].T < olderThan {
					cut++
				}
				if cut == 0 {
					continue
				}
				old := &Series{Samples: s.samples[:cut]}
				ds := Downsample(old, step)
				if len(ds) >= cut {
					continue // nothing gained
				}
				merged := make([]Sample, 0, len(ds)+len(s.samples)-cut)
				merged = append(merged, ds...)
				merged = append(merged, s.samples[cut:]...)
				reduced += len(s.samples) - len(merged)
				s.samples = merged
			}
		}
		sh.mu.Unlock()
	}
	return reduced
}
