package telemetry

import (
	"sapsim/internal/sim"
)

// Compaction mirrors the long-term-storage role Thanos plays above
// Prometheus in the paper's monitoring stack (Sec. 4): raw high-resolution
// samples are kept for a recent window, while older data is downsampled to
// coarse means so month-scale queries stay cheap.

// DropBefore removes all samples strictly older than cutoff, enforcing a
// retention limit. It reports the number of samples removed. Series left
// empty are removed from the store.
func (st *Store) DropBefore(cutoff sim.Time) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	removed := 0
	for fp, s := range st.series {
		n := 0
		for n < len(s.Samples) && s.Samples[n].T < cutoff {
			n++
		}
		if n == 0 {
			continue
		}
		removed += n
		s.Samples = append([]Sample(nil), s.Samples[n:]...)
		if len(s.Samples) == 0 {
			delete(st.series, fp)
			st.order = deleteFP(st.order, fp)
		}
	}
	return removed
}

// Compact downsamples every sample older than olderThan to one mean sample
// per step, keeping newer samples at full resolution. It reports the net
// reduction in sample count. Compaction preserves per-bucket means, so
// daily aggregates (the unit of every heatmap) are unchanged for
// bucket-aligned steps.
func (st *Store) Compact(olderThan sim.Time, step sim.Time) int {
	if step <= 0 {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	reduced := 0
	for _, s := range st.series {
		cut := 0
		for cut < len(s.Samples) && s.Samples[cut].T < olderThan {
			cut++
		}
		if cut == 0 {
			continue
		}
		old := &Series{Samples: s.Samples[:cut]}
		ds := Downsample(old, step)
		if len(ds) >= cut {
			continue // nothing gained
		}
		merged := make([]Sample, 0, len(ds)+len(s.Samples)-cut)
		merged = append(merged, ds...)
		merged = append(merged, s.Samples[cut:]...)
		reduced += len(s.Samples) - len(merged)
		s.Samples = merged
	}
	return reduced
}

func deleteFP(order []string, fp string) []string {
	for i, v := range order {
		if v == fp {
			return append(order[:i], order[i+1:]...)
		}
	}
	return order
}
