package telemetry

import (
	"math"
	"testing"

	"sapsim/internal/sim"
)

func fillStore(t *testing.T) *Store {
	t.Helper()
	st := NewStore()
	l := MustLabels("node", "n1")
	for i := 0; i < 10*24*12; i++ { // 10 days at 5-minute resolution
		ts := sim.Time(i) * 5 * sim.Minute
		if err := st.Append("cpu", l, ts, float64(i%12)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestDropBefore(t *testing.T) {
	st := fillStore(t)
	before := st.SampleCount()
	removed := st.DropBefore(5 * sim.Day)
	if removed != before/2 {
		t.Errorf("removed %d, want %d", removed, before/2)
	}
	s := st.Select("cpu")[0]
	if s.Samples[0].T != 5*sim.Day {
		t.Errorf("first sample at %v, want 5d", s.Samples[0].T)
	}
	// Idempotent.
	if again := st.DropBefore(5 * sim.Day); again != 0 {
		t.Errorf("second drop removed %d", again)
	}
}

func TestDropBeforeRemovesEmptySeries(t *testing.T) {
	st := NewStore()
	l := MustLabels("node", "gone")
	if err := st.Append("cpu", l, sim.Hour, 1); err != nil {
		t.Fatal(err)
	}
	st.DropBefore(sim.Day)
	if st.SeriesCount() != 0 {
		t.Error("empty series not removed")
	}
	if len(st.Select("cpu")) != 0 {
		t.Error("select still returns the dead series")
	}
	// Appending afresh must work (series recreated).
	if err := st.Append("cpu", l, 2*sim.Day, 2); err != nil {
		t.Fatal(err)
	}
	if st.SeriesCount() != 1 {
		t.Error("series not recreated")
	}
}

func TestCompactReducesAndPreservesDailyMeans(t *testing.T) {
	st := fillStore(t)
	s := st.Select("cpu")[0]
	wantDaily := DailyStats(s, 10)

	before := st.SampleCount()
	reduced := st.Compact(7*sim.Day, sim.Hour)
	if reduced <= 0 {
		t.Fatal("compaction reduced nothing")
	}
	if st.SampleCount() != before-reduced {
		t.Errorf("sample accounting wrong: %d vs %d-%d", st.SampleCount(), before, reduced)
	}

	// The compacted region is hourly now; 7 days × 24 + 3 days × 288.
	s = st.Select("cpu")[0]
	want := 7*24 + 3*288
	if len(s.Samples) != want {
		t.Errorf("samples after compact = %d, want %d", len(s.Samples), want)
	}

	// Daily means must be unchanged (step divides the day and the raw
	// pattern is uniform within buckets).
	gotDaily := DailyStats(s, 10)
	for d := range wantDaily {
		if math.Abs(gotDaily[d].Mean-wantDaily[d].Mean) > 1e-9 {
			t.Errorf("day %d mean changed: %v -> %v", d, wantDaily[d].Mean, gotDaily[d].Mean)
		}
	}

	// Samples must remain strictly ordered (appendable).
	for i := 1; i < len(s.Samples); i++ {
		if s.Samples[i-1].T >= s.Samples[i].T {
			t.Fatal("compacted series out of order")
		}
	}
	l := MustLabels("node", "n1")
	if err := st.Append("cpu", l, 11*sim.Day, 1); err != nil {
		t.Errorf("append after compact: %v", err)
	}
}

func TestCompactNoopCases(t *testing.T) {
	st := fillStore(t)
	if st.Compact(0, sim.Hour) != 0 {
		t.Error("compacting nothing reduced samples")
	}
	if st.Compact(sim.Day, 0) != 0 {
		t.Error("zero step compacted")
	}
	// Compacting already-coarse data gains nothing.
	st.Compact(10*sim.Day, sim.Hour)
	if st.Compact(10*sim.Day, sim.Hour) != 0 {
		t.Error("recompaction reduced again")
	}
}
