package telemetry

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"sapsim/internal/sim"
)

func fillStore(t *testing.T) *Store {
	t.Helper()
	st := NewStore()
	l := MustLabels("node", "n1")
	for i := 0; i < 10*24*12; i++ { // 10 days at 5-minute resolution
		ts := sim.Time(i) * 5 * sim.Minute
		if err := st.Append("cpu", l, ts, float64(i%12)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestDropBefore(t *testing.T) {
	st := fillStore(t)
	before := st.SampleCount()
	removed := st.DropBefore(5 * sim.Day)
	if removed != before/2 {
		t.Errorf("removed %d, want %d", removed, before/2)
	}
	s := st.Select("cpu")[0]
	if s.Samples[0].T != 5*sim.Day {
		t.Errorf("first sample at %v, want 5d", s.Samples[0].T)
	}
	// Idempotent.
	if again := st.DropBefore(5 * sim.Day); again != 0 {
		t.Errorf("second drop removed %d", again)
	}
}

func TestDropBeforeRemovesEmptySeries(t *testing.T) {
	st := NewStore()
	l := MustLabels("node", "gone")
	if err := st.Append("cpu", l, sim.Hour, 1); err != nil {
		t.Fatal(err)
	}
	st.DropBefore(sim.Day)
	if st.SeriesCount() != 0 {
		t.Error("empty series not removed")
	}
	if len(st.Select("cpu")) != 0 {
		t.Error("select still returns the dead series")
	}
	// Appending afresh must work (series recreated).
	if err := st.Append("cpu", l, 2*sim.Day, 2); err != nil {
		t.Fatal(err)
	}
	if st.SeriesCount() != 1 {
		t.Error("series not recreated")
	}
}

func TestCompactReducesAndPreservesDailyMeans(t *testing.T) {
	st := fillStore(t)
	s := st.Select("cpu")[0]
	wantDaily := DailyStats(s, 10)

	before := st.SampleCount()
	reduced := st.Compact(7*sim.Day, sim.Hour)
	if reduced <= 0 {
		t.Fatal("compaction reduced nothing")
	}
	if st.SampleCount() != before-reduced {
		t.Errorf("sample accounting wrong: %d vs %d-%d", st.SampleCount(), before, reduced)
	}

	// The compacted region is hourly now; 7 days × 24 + 3 days × 288.
	s = st.Select("cpu")[0]
	want := 7*24 + 3*288
	if len(s.Samples) != want {
		t.Errorf("samples after compact = %d, want %d", len(s.Samples), want)
	}

	// Daily means must be unchanged (step divides the day and the raw
	// pattern is uniform within buckets).
	gotDaily := DailyStats(s, 10)
	for d := range wantDaily {
		if math.Abs(gotDaily[d].Mean-wantDaily[d].Mean) > 1e-9 {
			t.Errorf("day %d mean changed: %v -> %v", d, wantDaily[d].Mean, gotDaily[d].Mean)
		}
	}

	// Samples must remain strictly ordered (appendable).
	for i := 1; i < len(s.Samples); i++ {
		if s.Samples[i-1].T >= s.Samples[i].T {
			t.Fatal("compacted series out of order")
		}
	}
	l := MustLabels("node", "n1")
	if err := st.Append("cpu", l, 11*sim.Day, 1); err != nil {
		t.Errorf("append after compact: %v", err)
	}
}

// fillMultiShard spreads series over metrics and nodes so every retention
// test below exercises multiple shards.
func fillMultiShard(t *testing.T) *Store {
	t.Helper()
	st := NewStore()
	app := st.Appender()
	for _, metric := range []string{"cpu", "mem", "net"} {
		for n := 0; n < 32; n++ {
			l := MustLabels("node", fmt.Sprintf("n%02d", n))
			for i := 0; i < 48; i++ { // 2 days hourly
				app.Append(metric, l, sim.Time(i)*sim.Hour, float64(i))
			}
		}
	}
	if _, err := app.Commit(); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDropBeforeIndexConsistency: after retention deletes whole series, the
// postings and label-value indexes must agree — Metrics goes empty, Select
// by metric and by matcher find nothing, and recreation works.
func TestDropBeforeIndexConsistency(t *testing.T) {
	st := fillMultiShard(t)
	if got := len(st.Metrics()); got != 3 {
		t.Fatalf("Metrics = %d, want 3", got)
	}
	st.DropBefore(48 * sim.Hour) // everything
	if st.SeriesCount() != 0 || st.SampleCount() != 0 {
		t.Errorf("store not empty: %d series, %d samples", st.SeriesCount(), st.SampleCount())
	}
	if got := st.Metrics(); len(got) != 0 {
		t.Errorf("Metrics after full drop = %v, want none (stale postings)", got)
	}
	for _, metric := range []string{"cpu", "mem", "net"} {
		if got := st.Select(metric); len(got) != 0 {
			t.Errorf("Select(%s) after full drop = %d series (stale postings)", metric, len(got))
		}
		if got := st.Select(metric, Matcher{"node", "n00"}); len(got) != 0 {
			t.Errorf("matcher Select(%s) after full drop = %d series (stale label index)", metric, len(got))
		}
	}
	// Recreation re-indexes from scratch.
	if err := st.Append("cpu", MustLabels("node", "n00"), 100*sim.Hour, 1); err != nil {
		t.Fatal(err)
	}
	if got := st.Select("cpu", Matcher{"node", "n00"}); len(got) != 1 {
		t.Errorf("recreated series not indexed: %d", len(got))
	}
}

// TestDropBeforePartialKeepsIndexes: dropping only part of the window must
// leave every series selectable through both indexes.
func TestDropBeforePartialKeepsIndexes(t *testing.T) {
	st := fillMultiShard(t)
	removed := st.DropBefore(24 * sim.Hour)
	if want := 3 * 32 * 24; removed != want {
		t.Errorf("removed %d, want %d", removed, want)
	}
	for _, metric := range []string{"cpu", "mem", "net"} {
		if got := st.Select(metric); len(got) != 32 {
			t.Errorf("Select(%s) = %d series, want 32", metric, len(got))
		}
	}
	got := st.Select("mem", Matcher{"node", "n17"})
	if len(got) != 1 || got[0].Samples[0].T != 24*sim.Hour {
		t.Errorf("matcher select after partial drop wrong: %v", got)
	}
}

// TestCompactIndexConsistency: compaction rewrites samples but must leave
// every index entry intact, and the store appendable across shards.
func TestCompactIndexConsistency(t *testing.T) {
	st := fillMultiShard(t)
	before := st.SeriesCount()
	reduced := st.Compact(48*sim.Hour, sim.Day)
	if reduced <= 0 {
		t.Fatal("compaction reduced nothing")
	}
	if st.SeriesCount() != before {
		t.Errorf("compaction changed series count: %d -> %d", before, st.SeriesCount())
	}
	for _, metric := range []string{"cpu", "mem", "net"} {
		series := st.Select(metric)
		if len(series) != 32 {
			t.Fatalf("Select(%s) = %d series after compact, want 32", metric, len(series))
		}
		for _, s := range series {
			if len(s.Samples) != 2 { // 2 days → 2 daily means
				t.Fatalf("%s%s has %d samples, want 2", metric, s.Labels, len(s.Samples))
			}
		}
	}
	if got := st.Select("net", Matcher{"node", "n31"}); len(got) != 1 {
		t.Errorf("label index broken after compact: %d", len(got))
	}
}

// TestOutOfOrderAcrossShardsAfterRetention: the out-of-order guard must
// hold on compacted timelines in every shard.
func TestOutOfOrderAcrossShardsAfterRetention(t *testing.T) {
	st := fillMultiShard(t)
	st.Compact(48*sim.Hour, sim.Day)
	app := st.Appender()
	for n := 0; n < 32; n++ {
		l := MustLabels("node", fmt.Sprintf("n%02d", n))
		// Last compacted sample anchors at t=1d; t=0 is in the past.
		app.Append("cpu", l, 0, 1)
	}
	applied, err := app.Commit()
	if !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("stale appends accepted: applied=%d err=%v", applied, err)
	}
	if applied != 0 {
		t.Errorf("applied = %d stale samples, want 0", applied)
	}
	// Fresh timestamps are fine everywhere.
	for n := 0; n < 32; n++ {
		l := MustLabels("node", fmt.Sprintf("n%02d", n))
		app.Append("cpu", l, 3*sim.Day, 1)
	}
	if applied, err := app.Commit(); err != nil || applied != 32 {
		t.Errorf("fresh appends after compaction: applied=%d err=%v", applied, err)
	}
}

func TestCompactNoopCases(t *testing.T) {
	st := fillStore(t)
	if st.Compact(0, sim.Hour) != 0 {
		t.Error("compacting nothing reduced samples")
	}
	if st.Compact(sim.Day, 0) != 0 {
		t.Error("zero step compacted")
	}
	// Compacting already-coarse data gains nothing.
	st.Compact(10*sim.Day, sim.Hour)
	if st.Compact(10*sim.Day, sim.Hour) != 0 {
		t.Error("recompaction reduced again")
	}
}
