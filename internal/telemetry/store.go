package telemetry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"sapsim/internal/sim"
)

// shardCount is the number of independently locked shards. A power of two
// so shard selection is a mask; fixed so shard assignment is stable for
// the lifetime of a store.
const shardCount = 16

// memSeries is the mutable in-store representation of one series. The
// exported Series type is a read-only snapshot of it.
type memSeries struct {
	metric  string
	labels  Labels
	hash    uint64 // hashSeries(metric, labels)
	seq     uint64 // global creation sequence, for deterministic Select order
	samples []Sample
}

// appendSample enforces strict time order. Called with the shard lock held.
// The error path is the one place the string fingerprint survives — the
// hot path works purely on the 64-bit hash.
func (s *memSeries) appendSample(t sim.Time, v float64) error {
	if n := len(s.samples); n > 0 && s.samples[n-1].T >= t {
		return fmt.Errorf("%w: %s%s t=%v last=%v",
			ErrOutOfOrder, s.metric, s.labels, t, s.samples[n-1].T)
	}
	s.samples = append(s.samples, Sample{T: t, V: v})
	return nil
}

// snapshot returns an immutable view. The three-index slice caps the
// snapshot at the current length: a later append writes past the cap (or
// reallocates), never into the snapshot's window, and Compact/DropBefore
// replace the backing array wholesale, so snapshots stay stable under
// concurrent writes. Called with the shard lock held.
func (s *memSeries) snapshot() *Series {
	n := len(s.samples)
	return &Series{Metric: s.metric, Labels: s.labels, Samples: s.samples[:n:n]}
}

// shard is one lock domain: a fraction of the series keyed by fingerprint
// hash, plus the indexes that make Select proportional to result size.
type shard struct {
	mu sync.RWMutex
	// series chains fingerprint collisions; chains are almost always
	// length 1.
	series map[uint64][]*memSeries
	// postings indexes metric name → member series in creation order.
	postings map[string][]*memSeries
	// byLabel indexes label name → value → member series, so an equality
	// matcher can seed candidate selection with the smallest posting list.
	byLabel map[string]map[string][]*memSeries
}

func (sh *shard) init() {
	sh.series = make(map[uint64][]*memSeries)
	sh.postings = make(map[string][]*memSeries)
	sh.byLabel = make(map[string]map[string][]*memSeries)
}

// Store holds many series and is safe for concurrent use (the exporter
// scrape path and the simulator may interleave).
type Store struct {
	shards [shardCount]shard
	seq    atomic.Uint64

	// interned deduplicates label sets store-wide: every series created
	// with an equal label set shares one backing slice. Entries are
	// refcounted so retention can prune label sets whose last series is
	// gone.
	internMu sync.Mutex
	interned map[uint64][]internEntry
}

type internEntry struct {
	labels Labels
	refs   int
}

// NewStore returns an empty store.
func NewStore() *Store {
	st := &Store{interned: make(map[uint64][]internEntry)}
	for i := range st.shards {
		st.shards[i].init()
	}
	return st
}

// ErrOutOfOrder is returned when appending a sample at or before the last
// timestamp of its series.
var ErrOutOfOrder = errors.New("telemetry: out-of-order sample")

func (st *Store) shardFor(hash uint64) *shard {
	return &st.shards[hash&(shardCount-1)]
}

// intern returns the canonical copy of a label set, taking one reference.
func (st *Store) intern(l Labels) Labels {
	h := hashLabels(l)
	st.internMu.Lock()
	defer st.internMu.Unlock()
	entries := st.interned[h]
	for i := range entries {
		if entries[i].labels.Equal(l) {
			entries[i].refs++
			return entries[i].labels
		}
	}
	st.interned[h] = append(entries, internEntry{labels: l, refs: 1})
	return l
}

// releaseInterned drops one reference to a label set, pruning the entry
// when its last series is gone.
func (st *Store) releaseInterned(l Labels) {
	h := hashLabels(l)
	st.internMu.Lock()
	defer st.internMu.Unlock()
	entries := st.interned[h]
	for i := range entries {
		if entries[i].labels.Equal(l) {
			entries[i].refs--
			if entries[i].refs <= 0 {
				entries = append(entries[:i], entries[i+1:]...)
				if len(entries) == 0 {
					delete(st.interned, h)
				} else {
					st.interned[h] = entries
				}
			}
			return
		}
	}
}

// getOrCreate resolves (metric, labels) to its series, creating and
// indexing it on first use. Called with the shard write lock held.
func (st *Store) getOrCreate(sh *shard, hash uint64, metric string, labels Labels) *memSeries {
	for _, s := range sh.series[hash] {
		if s.metric == metric && s.labels.Equal(labels) {
			return s
		}
	}
	s := &memSeries{
		metric: metric,
		labels: st.intern(labels),
		hash:   hash,
		seq:    st.seq.Add(1),
	}
	sh.series[hash] = append(sh.series[hash], s)
	sh.postings[metric] = append(sh.postings[metric], s)
	for i := 0; i < len(s.labels.kv); i += 2 {
		name, value := s.labels.kv[i], s.labels.kv[i+1]
		vals := sh.byLabel[name]
		if vals == nil {
			vals = make(map[string][]*memSeries)
			sh.byLabel[name] = vals
		}
		vals[value] = append(vals[value], s)
	}
	return s
}

// removeSeries unlinks a series from every index of its shard and releases
// its interned label set. Called with the shard write lock held (the
// shard-lock → internMu order matches getOrCreate).
func (st *Store) removeSeries(sh *shard, s *memSeries) {
	sh.series[s.hash] = filterOut(sh.series[s.hash], s)
	if len(sh.series[s.hash]) == 0 {
		delete(sh.series, s.hash)
	}
	sh.postings[s.metric] = filterOut(sh.postings[s.metric], s)
	if len(sh.postings[s.metric]) == 0 {
		delete(sh.postings, s.metric)
	}
	for i := 0; i < len(s.labels.kv); i += 2 {
		name, value := s.labels.kv[i], s.labels.kv[i+1]
		vals := sh.byLabel[name]
		if vals == nil {
			continue
		}
		vals[value] = filterOut(vals[value], s)
		if len(vals[value]) == 0 {
			delete(vals, value)
		}
		if len(vals) == 0 {
			delete(sh.byLabel, name)
		}
	}
	st.releaseInterned(s.labels)
}

func filterOut(list []*memSeries, drop *memSeries) []*memSeries {
	for i, s := range list {
		if s == drop {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// Append adds a sample to the series identified by (metric, labels),
// creating it on first use. For bulk ingestion prefer an Appender, which
// batches samples and takes each shard lock once per flush.
func (st *Store) Append(metric string, labels Labels, t sim.Time, v float64) error {
	hash := hashSeries(metric, labels)
	sh := st.shardFor(hash)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return st.getOrCreate(sh, hash, metric, labels).appendSample(t, v)
}

// Matcher restricts a selection to series whose label equals a value.
type Matcher struct {
	Name  string
	Value string
}

// Select returns snapshots of all series of the metric whose labels
// satisfy every matcher, in deterministic (creation) order. The postings
// and label-value indexes bound the work by the smallest candidate list,
// so cost is proportional to matching series, not store size. Snapshots
// are immune to subsequent appends and compactions.
func (st *Store) Select(metric string, matchers ...Matcher) []*Series {
	type hit struct {
		seq uint64
		s   *Series
	}
	var hits []hit
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		candidates := sh.postings[metric]
		// Seed from the smallest index posting list; every candidate is
		// still verified against the metric and all matchers below. An
		// empty-value matcher means "label absent", which the index cannot
		// serve, so those fall through to the filter.
		for _, m := range matchers {
			if m.Value == "" {
				continue
			}
			byValue := sh.byLabel[m.Name][m.Value]
			if len(byValue) < len(candidates) {
				candidates = byValue
			}
		}
		for _, s := range candidates {
			if s.metric != metric {
				continue
			}
			ok := true
			for _, m := range matchers {
				if s.labels.Get(m.Name) != m.Value {
					ok = false
					break
				}
			}
			if ok {
				hits = append(hits, hit{seq: s.seq, s: s.snapshot()})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].seq < hits[j].seq })
	out := make([]*Series, 0, len(hits))
	for _, h := range hits {
		out = append(out, h.s)
	}
	return out
}

// Metrics returns the distinct metric names in the store, sorted.
func (st *Store) Metrics() []string {
	seen := map[string]bool{}
	var out []string
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for metric := range sh.postings {
			if !seen[metric] {
				seen[metric] = true
				out = append(out, metric)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// SeriesCount reports the number of stored series.
func (st *Store) SeriesCount() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for _, chain := range sh.series {
			n += len(chain)
		}
		sh.mu.RUnlock()
	}
	return n
}

// SampleCount reports the total number of stored samples.
func (st *Store) SampleCount() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for _, chain := range sh.series {
			for _, s := range chain {
				n += len(s.samples)
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// SeriesData is the serializable form of one series: the metric, the label
// pairs, and the samples. A store dumped and re-loaded behaves identically —
// including the per-metric creation order Select's determinism rests on.
type SeriesData struct {
	Metric  string
	Labels  []string // flattened name/value pairs, sorted by name
	Samples []Sample
}

// Dump snapshots every series in global creation order. Together with Load
// it round-trips a store through a snapshot.
func (st *Store) Dump() []SeriesData {
	type hit struct {
		seq uint64
		d   SeriesData
	}
	var hits []hit
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for _, chain := range sh.series {
			for _, s := range chain {
				samples := make([]Sample, len(s.samples))
				copy(samples, s.samples)
				hits = append(hits, hit{seq: s.seq, d: SeriesData{
					Metric: s.metric, Labels: s.labels.Pairs(), Samples: samples,
				}})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].seq < hits[j].seq })
	out := make([]SeriesData, 0, len(hits))
	for _, h := range hits {
		out = append(out, h.d)
	}
	return out
}

// Load replays a Dump into an empty store, recreating every series in the
// dumped order so creation sequence — and with it Select order — survives
// the round trip.
func (st *Store) Load(data []SeriesData) error {
	if st.SeriesCount() != 0 {
		return errors.New("telemetry: Load into a non-empty store")
	}
	for _, d := range data {
		labels, err := NewLabels(d.Labels...)
		if err != nil {
			return fmt.Errorf("telemetry: load %s: %w", d.Metric, err)
		}
		hash := hashSeries(d.Metric, labels)
		sh := st.shardFor(hash)
		sh.mu.Lock()
		s := st.getOrCreate(sh, hash, d.Metric, labels)
		s.samples = append(s.samples[:0], d.Samples...)
		sh.mu.Unlock()
	}
	return nil
}

// Querier is the read side of the store: the interface the analysis layer
// and the PromQL evaluator consume, decoupling them from the concrete
// sharded implementation.
type Querier interface {
	// Select returns immutable snapshots of the matching series in a
	// deterministic order.
	Select(metric string, matchers ...Matcher) []*Series
	// Metrics returns the distinct metric names, sorted.
	Metrics() []string
}

var _ Querier = (*Store)(nil)
