package telemetry

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"sapsim/internal/sim"
)

// TestSelectSnapshotImmutable verifies the data race fixed by the sharded
// store: series handed out by Select must not observe later appends.
func TestSelectSnapshotImmutable(t *testing.T) {
	st := NewStore()
	l := MustLabels("node", "n1")
	for i := 0; i < 3; i++ {
		if err := st.Append("cpu", l, sim.Time(i)*sim.Minute, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := st.Select("cpu")[0]
	if len(snap.Samples) != 3 {
		t.Fatalf("snapshot has %d samples, want 3", len(snap.Samples))
	}
	for i := 3; i < 1000; i++ {
		if err := st.Append("cpu", l, sim.Time(i)*sim.Minute, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(snap.Samples) != 3 {
		t.Errorf("snapshot grew to %d samples after appends", len(snap.Samples))
	}
	for i, smp := range snap.Samples {
		if smp.V != float64(i) {
			t.Errorf("snapshot sample %d mutated: %v", i, smp.V)
		}
	}
	// Compaction must not disturb outstanding snapshots either.
	snap2 := st.Select("cpu")[0]
	st.Compact(1000*sim.Minute, sim.Hour)
	if len(snap2.Samples) != 1000 {
		t.Errorf("snapshot shrank to %d samples after compaction", len(snap2.Samples))
	}
}

// TestConcurrentAppendSelect drives writers and readers together; run with
// -race this is the regression test for the old Select-returns-live-series
// race.
func TestConcurrentAppendSelect(t *testing.T) {
	st := NewStore()
	const writers = 4
	const perWriter = 500
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			app := st.Appender()
			l := MustLabels("g", fmt.Sprintf("w%d", g))
			for i := 0; i < perWriter; i++ {
				app.Append("m", l, sim.Time(i), float64(i))
				if i%50 == 49 {
					if _, err := app.Commit(); err != nil {
						t.Error(err)
						return
					}
				}
			}
			if _, err := app.Commit(); err != nil {
				t.Error(err)
			}
		}(g)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < 200; i++ {
			for _, s := range st.Select("m") {
				// Walk every sample; with -race this flags any mutation
				// of handed-out snapshots.
				for _, smp := range s.Samples {
					_ = smp.V
				}
			}
			_ = st.Metrics()
			_ = st.SampleCount()
		}
	}()
	wg.Wait()
	<-readerDone
	if got := st.SampleCount(); got != writers*perWriter {
		t.Errorf("SampleCount = %d, want %d", got, writers*perWriter)
	}
}

func TestAppenderBatch(t *testing.T) {
	st := NewStore()
	app := st.Appender()
	for i := 0; i < 100; i++ {
		l := MustLabels("node", fmt.Sprintf("n%02d", i))
		app.Append("cpu", l, sim.Minute, float64(i))
	}
	if app.Pending() != 100 {
		t.Errorf("Pending = %d, want 100", app.Pending())
	}
	// Nothing visible before commit.
	if n := st.SampleCount(); n != 0 {
		t.Errorf("samples visible before commit: %d", n)
	}
	applied, err := app.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if applied != 100 {
		t.Errorf("applied = %d, want 100", applied)
	}
	if app.Pending() != 0 {
		t.Errorf("Pending after commit = %d", app.Pending())
	}
	if st.SeriesCount() != 100 || st.SampleCount() != 100 {
		t.Errorf("store has %d series / %d samples, want 100/100",
			st.SeriesCount(), st.SampleCount())
	}
}

// TestAppenderPartialOutOfOrder: rejected samples are reported but do not
// sink the rest of the batch.
func TestAppenderPartialOutOfOrder(t *testing.T) {
	st := NewStore()
	l1 := MustLabels("node", "n1")
	l2 := MustLabels("node", "n2")
	if err := st.Append("cpu", l1, sim.Hour, 1); err != nil {
		t.Fatal(err)
	}
	app := st.Appender()
	app.Append("cpu", l1, sim.Minute, 2) // out of order for n1
	app.Append("cpu", l2, sim.Minute, 3) // fine for fresh n2
	applied, err := app.Commit()
	if !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("Commit error = %v, want ErrOutOfOrder", err)
	}
	if applied != 1 {
		t.Errorf("applied = %d, want 1", applied)
	}
	if got := st.Select("cpu", Matcher{"node", "n2"}); len(got) != 1 || got[0].Samples[0].V != 3 {
		t.Errorf("in-order sample of the batch missing: %v", got)
	}
	// The appender is reusable after an error.
	app.Append("cpu", l1, 2*sim.Hour, 4)
	if applied, err := app.Commit(); err != nil || applied != 1 {
		t.Errorf("reuse after error: applied=%d err=%v", applied, err)
	}
}

// TestLabelInterning: series sharing a label set share one backing slice.
func TestLabelInterning(t *testing.T) {
	st := NewStore()
	mk := func() Labels { return MustLabels("node", "n1", "cluster", "bb-0") }
	if err := st.Append("cpu", mk(), 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("mem", mk(), 0, 1); err != nil {
		t.Fatal(err)
	}
	a := st.Select("cpu")[0].Labels
	b := st.Select("mem")[0].Labels
	if len(a.kv) == 0 || &a.kv[0] != &b.kv[0] {
		t.Error("equal label sets not interned to one backing slice")
	}
}

// TestInternPruning: retention that deletes the last series of a label set
// must release the interned entry (churning VM labels must not accumulate
// for the store's lifetime).
func TestInternPruning(t *testing.T) {
	st := NewStore()
	keep := MustLabels("node", "survivor")
	if err := st.Append("cpu", keep, 10*sim.Day, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		l := MustLabels("virtualmachine", fmt.Sprintf("vm-%03d", i))
		if err := st.Append("vm_cpu", l, sim.Time(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	st.DropBefore(sim.Day) // kills all 100 VM series, keeps the survivor
	st.internMu.Lock()
	entries := 0
	for _, chain := range st.interned {
		entries += len(chain)
	}
	st.internMu.Unlock()
	if entries != 1 {
		t.Errorf("intern table holds %d label sets after retention, want 1", entries)
	}
}

// TestSelectEmptyValueMatcher: a matcher with an empty value selects series
// lacking the label (the index cannot serve this; the filter must).
func TestSelectEmptyValueMatcher(t *testing.T) {
	st := NewStore()
	if err := st.Append("cpu", MustLabels("node", "n1"), 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("cpu", MustLabels("node", "n2", "extra", "x"), 0, 2); err != nil {
		t.Fatal(err)
	}
	got := st.Select("cpu", Matcher{Name: "extra", Value: ""})
	if len(got) != 1 || got[0].Labels.Get("node") != "n1" {
		t.Errorf("empty-value matcher = %v, want the label-less series", got)
	}
}

// TestSelectDeterministicOrder: creation order survives sharding.
func TestSelectDeterministicOrder(t *testing.T) {
	st := NewStore()
	want := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("n%02d", i)
		if err := st.Append("cpu", MustLabels("node", name), 0, 1); err != nil {
			t.Fatal(err)
		}
		want = append(want, name)
	}
	got := st.Select("cpu")
	if len(got) != len(want) {
		t.Fatalf("got %d series, want %d", len(got), len(want))
	}
	for i, s := range got {
		if s.Labels.Get("node") != want[i] {
			t.Fatalf("series %d = %s, want %s (creation order lost)",
				i, s.Labels.Get("node"), want[i])
		}
	}
}

// TestHashMatchesStringFingerprint: the 64-bit hash must distinguish every
// pair the debug string fingerprint distinguishes, including the classic
// concatenation ambiguity ("ab"+"c" vs "a"+"bc").
func TestHashMatchesStringFingerprint(t *testing.T) {
	cases := []struct {
		metric string
		labels Labels
	}{
		{"cpu", MustLabels("node", "n1")},
		{"cpu", MustLabels("node", "n2")},
		{"cpun", MustLabels("ode", "n1")},
		{"mem", MustLabels("node", "n1")},
		{"cpu", MustLabels("no", "den1")},
		{"cpu", Labels{}},
		{"", MustLabels("node", "n1")},
	}
	for i := range cases {
		for j := range cases {
			if i == j {
				continue
			}
			fpEq := fingerprint(cases[i].metric, cases[i].labels) == fingerprint(cases[j].metric, cases[j].labels)
			hashEq := hashSeries(cases[i].metric, cases[i].labels) == hashSeries(cases[j].metric, cases[j].labels)
			if fpEq != hashEq {
				t.Errorf("case %d vs %d: string fingerprint equal=%v, hash equal=%v",
					i, j, fpEq, hashEq)
			}
		}
	}
}

// TestSeriesSpreadAcrossShards: a realistic population should not collapse
// into one shard (sanity check on the hash distribution).
func TestSeriesSpreadAcrossShards(t *testing.T) {
	st := NewStore()
	for i := 0; i < 256; i++ {
		l := MustLabels("hostsystem", fmt.Sprintf("node-%03d", i))
		if err := st.Append("cpu", l, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	occupied := 0
	for i := range st.shards {
		if len(st.shards[i].series) > 0 {
			occupied++
		}
	}
	if occupied < shardCount/2 {
		t.Errorf("256 series landed in only %d of %d shards", occupied, shardCount)
	}
}
