// Package telemetry is an in-memory, labelled time-series store modeled on
// the Prometheus + Thanos monitoring backend of the SAP Cloud Infrastructure
// (Sec. 4). It stores samples appended by exporters or directly by the
// simulator, and answers the range queries and aggregations the paper's
// analysis requires (daily means, p95, max over node and VM populations).
//
// The store is deliberately simple — dense slices of samples per series —
// because a 30-day simulated window at 30 s..300 s resolution over a few
// hundred nodes fits comfortably in memory, just as the paper's regional
// slice fits a Thanos deployment.
package telemetry

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"sapsim/internal/sim"
)

// Sample is one measurement point.
type Sample struct {
	T sim.Time
	V float64
}

// Labels is an immutable label set. Construct with NewLabels.
type Labels struct {
	kv []string // flattened sorted key, value pairs
}

// NewLabels builds a label set from alternating key, value strings.
func NewLabels(pairs ...string) (Labels, error) {
	if len(pairs)%2 != 0 {
		return Labels{}, errors.New("telemetry: odd number of label arguments")
	}
	type pair struct{ k, v string }
	ps := make([]pair, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		if pairs[i] == "" {
			return Labels{}, errors.New("telemetry: empty label name")
		}
		ps = append(ps, pair{pairs[i], pairs[i+1]})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	for i := 1; i < len(ps); i++ {
		if ps[i].k == ps[i-1].k {
			return Labels{}, fmt.Errorf("telemetry: duplicate label %q", ps[i].k)
		}
	}
	flat := make([]string, 0, len(pairs))
	for _, p := range ps {
		flat = append(flat, p.k, p.v)
	}
	return Labels{kv: flat}, nil
}

// MustLabels is NewLabels that panics on error; for constant label sets.
func MustLabels(pairs ...string) Labels {
	l, err := NewLabels(pairs...)
	if err != nil {
		panic(err)
	}
	return l
}

// Get returns the value of a label, or "".
func (l Labels) Get(name string) string {
	for i := 0; i < len(l.kv); i += 2 {
		if l.kv[i] == name {
			return l.kv[i+1]
		}
	}
	return ""
}

// Len reports the number of labels.
func (l Labels) Len() int { return len(l.kv) / 2 }

// Names returns the label names in sorted order.
func (l Labels) Names() []string {
	out := make([]string, 0, l.Len())
	for i := 0; i < len(l.kv); i += 2 {
		out = append(out, l.kv[i])
	}
	return out
}

// Pairs returns the flattened sorted key, value pairs. The slice is a copy.
func (l Labels) Pairs() []string {
	return append([]string(nil), l.kv...)
}

// String renders the label set in Prometheus selector syntax.
func (l Labels) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(l.kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.kv[i], l.kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// fingerprint is a canonical map key for (metric, labels).
func fingerprint(metric string, l Labels) string {
	var b strings.Builder
	b.WriteString(metric)
	for _, s := range l.kv {
		b.WriteByte(0xff)
		b.WriteString(s)
	}
	return b.String()
}

// Series is one time series: a metric name, a label set, and samples in
// strictly increasing time order.
type Series struct {
	Metric  string
	Labels  Labels
	Samples []Sample
}

// Last returns the most recent sample, or false if the series is empty.
func (s *Series) Last() (Sample, bool) {
	if len(s.Samples) == 0 {
		return Sample{}, false
	}
	return s.Samples[len(s.Samples)-1], true
}

// Range returns the samples with from <= T < to. The returned slice aliases
// the series storage; callers must not mutate it.
func (s *Series) Range(from, to sim.Time) []Sample {
	lo := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].T >= from })
	hi := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].T >= to })
	return s.Samples[lo:hi]
}

// At returns the value at or immediately before t (Prometheus instant-query
// staleness semantics, without the staleness window).
func (s *Series) At(t sim.Time) (float64, bool) {
	i := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].T > t })
	if i == 0 {
		return 0, false
	}
	return s.Samples[i-1].V, true
}

// Store holds many series and is safe for concurrent use (the exporter
// scrape path and the simulator may interleave).
type Store struct {
	mu     sync.RWMutex
	series map[string]*Series
	order  []string // insertion order of fingerprints, for deterministic iteration
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{series: make(map[string]*Series)}
}

// ErrOutOfOrder is returned when appending a sample at or before the last
// timestamp of its series.
var ErrOutOfOrder = errors.New("telemetry: out-of-order sample")

// Append adds a sample to the series identified by (metric, labels),
// creating it on first use.
func (st *Store) Append(metric string, labels Labels, t sim.Time, v float64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	fp := fingerprint(metric, labels)
	s, ok := st.series[fp]
	if !ok {
		s = &Series{Metric: metric, Labels: labels}
		st.series[fp] = s
		st.order = append(st.order, fp)
	}
	if n := len(s.Samples); n > 0 && s.Samples[n-1].T >= t {
		return fmt.Errorf("%w: %s t=%v last=%v", ErrOutOfOrder, metric, t, s.Samples[n-1].T)
	}
	s.Samples = append(s.Samples, Sample{T: t, V: v})
	return nil
}

// Matcher restricts a selection to series whose label equals a value.
type Matcher struct {
	Name  string
	Value string
}

// Select returns all series of the metric whose labels satisfy every
// matcher, in deterministic (insertion) order.
func (st *Store) Select(metric string, matchers ...Matcher) []*Series {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []*Series
	for _, fp := range st.order {
		s := st.series[fp]
		if s.Metric != metric {
			continue
		}
		ok := true
		for _, m := range matchers {
			if s.Labels.Get(m.Name) != m.Value {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, s)
		}
	}
	return out
}

// Metrics returns the distinct metric names in the store, sorted.
func (st *Store) Metrics() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	seen := map[string]bool{}
	var out []string
	for _, s := range st.series {
		if !seen[s.Metric] {
			seen[s.Metric] = true
			out = append(out, s.Metric)
		}
	}
	sort.Strings(out)
	return out
}

// SeriesCount reports the number of stored series.
func (st *Store) SeriesCount() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.series)
}

// SampleCount reports the total number of stored samples.
func (st *Store) SampleCount() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	n := 0
	for _, s := range st.series {
		n += len(s.Samples)
	}
	return n
}
