// Package telemetry is an in-memory, labelled time-series store modeled on
// the Prometheus + Thanos monitoring backend of the SAP Cloud Infrastructure
// (Sec. 4). It stores samples appended by exporters or directly by the
// simulator, and answers the range queries and aggregations the paper's
// analysis requires (daily means, p95, max over node and VM populations).
//
// The store is sharded: series are distributed over a fixed number of
// shards by a 64-bit FNV-1a fingerprint of (metric, labels), each shard
// keeping its own lock, a metric→series postings index, and a label-value
// index, so concurrent ingestion scales with shard count and Select walks
// only candidate series instead of the whole store. Batch ingestion goes
// through an Appender (one lock acquisition per shard per flush); reads
// receive immutable snapshots.
package telemetry

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"sapsim/internal/sim"
)

// Sample is one measurement point.
type Sample struct {
	T sim.Time
	V float64
}

// Labels is an immutable label set. Construct with NewLabels.
type Labels struct {
	kv []string // flattened sorted key, value pairs
}

// NewLabels builds a label set from alternating key, value strings.
func NewLabels(pairs ...string) (Labels, error) {
	if len(pairs)%2 != 0 {
		return Labels{}, errors.New("telemetry: odd number of label arguments")
	}
	type pair struct{ k, v string }
	ps := make([]pair, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		if pairs[i] == "" {
			return Labels{}, errors.New("telemetry: empty label name")
		}
		ps = append(ps, pair{pairs[i], pairs[i+1]})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	for i := 1; i < len(ps); i++ {
		if ps[i].k == ps[i-1].k {
			return Labels{}, fmt.Errorf("telemetry: duplicate label %q", ps[i].k)
		}
	}
	flat := make([]string, 0, len(pairs))
	for _, p := range ps {
		flat = append(flat, p.k, p.v)
	}
	return Labels{kv: flat}, nil
}

// MustLabels is NewLabels that panics on error; for constant label sets.
func MustLabels(pairs ...string) Labels {
	l, err := NewLabels(pairs...)
	if err != nil {
		panic(err)
	}
	return l
}

// Get returns the value of a label, or "".
func (l Labels) Get(name string) string {
	for i := 0; i < len(l.kv); i += 2 {
		if l.kv[i] == name {
			return l.kv[i+1]
		}
	}
	return ""
}

// Len reports the number of labels.
func (l Labels) Len() int { return len(l.kv) / 2 }

// Names returns the label names in sorted order.
func (l Labels) Names() []string {
	out := make([]string, 0, l.Len())
	for i := 0; i < len(l.kv); i += 2 {
		out = append(out, l.kv[i])
	}
	return out
}

// Pairs returns the flattened sorted key, value pairs. The slice is a copy.
func (l Labels) Pairs() []string {
	return append([]string(nil), l.kv...)
}

// With returns a copy of the set with one label added, or replaced if the
// name is already present. The receiver is unchanged (Labels stay
// immutable); scrapers use it to stamp a target-identity label onto every
// sample of a scrape.
func (l Labels) With(name, value string) Labels {
	kv := make([]string, 0, len(l.kv)+2)
	inserted := false
	for i := 0; i < len(l.kv); i += 2 {
		switch {
		case l.kv[i] == name:
			kv = append(kv, name, value)
			inserted = true
		case !inserted && l.kv[i] > name:
			kv = append(kv, name, value)
			inserted = true
			kv = append(kv, l.kv[i], l.kv[i+1])
		default:
			kv = append(kv, l.kv[i], l.kv[i+1])
		}
	}
	if !inserted {
		kv = append(kv, name, value)
	}
	return Labels{kv: kv}
}

// Equal reports whether two label sets are identical.
func (l Labels) Equal(o Labels) bool {
	if len(l.kv) != len(o.kv) {
		return false
	}
	for i, s := range l.kv {
		if o.kv[i] != s {
			return false
		}
	}
	return true
}

// String renders the label set in Prometheus selector syntax.
func (l Labels) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(l.kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.kv[i], l.kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// 64-bit FNV-1a. Series are keyed by this hash; the string fingerprint
// below survives only for collision diagnostics and debug output.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// hashSeries fingerprints (metric, labels) with a 0xff separator between
// components, mirroring the old string fingerprint without allocating.
func hashSeries(metric string, l Labels) uint64 {
	h := fnvString(fnvOffset64, metric)
	for _, s := range l.kv {
		h ^= 0xff
		h *= fnvPrime64
		h = fnvString(h, s)
	}
	return h
}

// hashLabels fingerprints a label set alone (for interning).
func hashLabels(l Labels) uint64 {
	h := uint64(fnvOffset64)
	for _, s := range l.kv {
		h ^= 0xff
		h *= fnvPrime64
		h = fnvString(h, s)
	}
	return h
}

// fingerprint is the human-readable series key, kept for debug paths only
// (the store keys series by hashSeries).
func fingerprint(metric string, l Labels) string {
	var b strings.Builder
	b.WriteString(metric)
	for _, s := range l.kv {
		b.WriteByte(0xff)
		b.WriteString(s)
	}
	return b.String()
}

// Series is one time series: a metric name, a label set, and samples in
// strictly increasing time order. Series returned by Store.Select are
// immutable snapshots: later appends or compactions never mutate them.
type Series struct {
	Metric  string
	Labels  Labels
	Samples []Sample
}

// Last returns the most recent sample, or false if the series is empty.
func (s *Series) Last() (Sample, bool) {
	if len(s.Samples) == 0 {
		return Sample{}, false
	}
	return s.Samples[len(s.Samples)-1], true
}

// Range returns the samples with from <= T < to. The returned slice aliases
// the series storage; callers must not mutate it.
func (s *Series) Range(from, to sim.Time) []Sample {
	lo := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].T >= from })
	hi := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].T >= to })
	return s.Samples[lo:hi]
}

// At returns the value at or immediately before t (Prometheus instant-query
// staleness semantics, without the staleness window).
func (s *Series) At(t sim.Time) (float64, bool) {
	i := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].T > t })
	if i == 0 {
		return 0, false
	}
	return s.Samples[i-1].V, true
}
