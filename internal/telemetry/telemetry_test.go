package telemetry

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"sapsim/internal/sim"
)

func TestNewLabels(t *testing.T) {
	l, err := NewLabels("node", "n1", "bb", "bb-0")
	if err != nil {
		t.Fatal(err)
	}
	if l.Get("node") != "n1" || l.Get("bb") != "bb-0" {
		t.Errorf("label values wrong: %v", l)
	}
	if l.Get("missing") != "" {
		t.Error("missing label should be empty")
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
}

func TestLabelsErrors(t *testing.T) {
	if _, err := NewLabels("odd"); err == nil {
		t.Error("odd label count accepted")
	}
	if _, err := NewLabels("", "v"); err == nil {
		t.Error("empty label name accepted")
	}
	if _, err := NewLabels("a", "1", "a", "2"); err == nil {
		t.Error("duplicate label accepted")
	}
}

func TestLabelsCanonicalOrder(t *testing.T) {
	a := MustLabels("b", "2", "a", "1")
	b := MustLabels("a", "1", "b", "2")
	if a.String() != b.String() {
		t.Errorf("label order not canonical: %s vs %s", a, b)
	}
	if a.String() != `{a="1",b="2"}` {
		t.Errorf("String = %s", a)
	}
}

func TestMustLabelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLabels did not panic on bad input")
		}
	}()
	MustLabels("odd")
}

func TestAppendAndSelect(t *testing.T) {
	st := NewStore()
	l1 := MustLabels("node", "n1")
	l2 := MustLabels("node", "n2")
	for i := 0; i < 5; i++ {
		if err := st.Append("cpu", l1, sim.Time(i)*sim.Minute, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Append("cpu", l2, 0, 9); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("mem", l1, 0, 1); err != nil {
		t.Fatal(err)
	}

	all := st.Select("cpu")
	if len(all) != 2 {
		t.Fatalf("Select(cpu) = %d series, want 2", len(all))
	}
	one := st.Select("cpu", Matcher{"node", "n1"})
	if len(one) != 1 || len(one[0].Samples) != 5 {
		t.Fatalf("Select(cpu,node=n1) wrong: %v", one)
	}
	none := st.Select("cpu", Matcher{"node", "nope"})
	if len(none) != 0 {
		t.Error("matcher failed to exclude")
	}
	if got := st.SeriesCount(); got != 3 {
		t.Errorf("SeriesCount = %d, want 3", got)
	}
	if got := st.SampleCount(); got != 7 {
		t.Errorf("SampleCount = %d, want 7", got)
	}
	metrics := st.Metrics()
	if len(metrics) != 2 || metrics[0] != "cpu" || metrics[1] != "mem" {
		t.Errorf("Metrics = %v", metrics)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	st := NewStore()
	l := MustLabels("n", "1")
	if err := st.Append("m", l, sim.Minute, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("m", l, sim.Minute, 2); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("equal timestamp error = %v, want ErrOutOfOrder", err)
	}
	if err := st.Append("m", l, 0, 2); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("past timestamp error = %v, want ErrOutOfOrder", err)
	}
}

func TestSeriesRangeAndAt(t *testing.T) {
	s := &Series{}
	for i := 0; i < 10; i++ {
		s.Samples = append(s.Samples, Sample{T: sim.Time(i) * sim.Hour, V: float64(i)})
	}
	win := s.Range(2*sim.Hour, 5*sim.Hour)
	if len(win) != 3 || win[0].V != 2 || win[2].V != 4 {
		t.Errorf("Range = %v", win)
	}
	if v, ok := s.At(3*sim.Hour + sim.Minute); !ok || v != 3 {
		t.Errorf("At = %v,%v want 3,true", v, ok)
	}
	if _, ok := s.At(-sim.Second); ok {
		t.Error("At before first sample should be false")
	}
	if last, ok := s.Last(); !ok || last.V != 9 {
		t.Errorf("Last = %v,%v", last, ok)
	}
	var empty Series
	if _, ok := empty.Last(); ok {
		t.Error("empty Last should be false")
	}
}

func TestAggregates(t *testing.T) {
	samples := []Sample{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	if got := Mean(samples); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Max(samples); got != 4 {
		t.Errorf("Max = %v, want 4", got)
	}
	if got := Min(samples); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Max(nil)) || !math.IsNaN(Min(nil)) {
		t.Error("empty aggregates should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := PercentileValues(vals, 50); got != 5.5 {
		t.Errorf("p50 = %v, want 5.5", got)
	}
	if got := PercentileValues(vals, 0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := PercentileValues(vals, 100); got != 10 {
		t.Errorf("p100 = %v, want 10", got)
	}
	if got := PercentileValues([]float64{7}, 95); got != 7 {
		t.Errorf("single-value p95 = %v, want 7", got)
	}
	if !math.IsNaN(PercentileValues(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	// Clamping.
	if got := PercentileValues(vals, -10); got != 1 {
		t.Errorf("p(-10) = %v, want 1", got)
	}
	if got := PercentileValues(vals, 200); got != 10 {
		t.Errorf("p(200) = %v, want 10", got)
	}
	// Input must not be mutated.
	orig := []float64{3, 1, 2}
	PercentileValues(orig, 50)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Error("PercentileValues mutated its input")
	}
}

func TestDailyStats(t *testing.T) {
	s := &Series{}
	// Day 0: values 10, 20. Day 1: empty. Day 2: value 30.
	s.Samples = []Sample{
		{T: sim.Hour, V: 10},
		{T: 2 * sim.Hour, V: 20},
		{T: 2*sim.Day + sim.Hour, V: 30},
	}
	stats := DailyStats(s, 3)
	if len(stats) != 3 {
		t.Fatalf("got %d days", len(stats))
	}
	if stats[0].Mean != 15 || stats[0].N != 2 || stats[0].Max != 20 {
		t.Errorf("day0 = %+v", stats[0])
	}
	if stats[1].N != 0 || !math.IsNaN(stats[1].Mean) {
		t.Errorf("day1 should be missing: %+v", stats[1])
	}
	if stats[2].Mean != 30 || stats[2].N != 1 {
		t.Errorf("day2 = %+v", stats[2])
	}
}

func TestDownsample(t *testing.T) {
	s := &Series{}
	for i := 0; i < 120; i++ { // 2 hours at 1-minute resolution
		s.Samples = append(s.Samples, Sample{T: sim.Time(i) * sim.Minute, V: float64(i)})
	}
	ds := Downsample(s, sim.Hour)
	if len(ds) != 2 {
		t.Fatalf("downsampled to %d buckets, want 2", len(ds))
	}
	if ds[0].V != 29.5 { // mean of 0..59
		t.Errorf("bucket0 mean = %v, want 29.5", ds[0].V)
	}
	if ds[1].V != 89.5 {
		t.Errorf("bucket1 mean = %v, want 89.5", ds[1].V)
	}
	if ds[0].T != 0 || ds[1].T != sim.Hour {
		t.Errorf("bucket anchors wrong: %v %v", ds[0].T, ds[1].T)
	}
	if Downsample(s, 0) != nil {
		t.Error("zero step should return nil")
	}
	if Downsample(&Series{}, sim.Hour) != nil {
		t.Error("empty series should return nil")
	}
}

func TestMeanOverRange(t *testing.T) {
	s := &Series{Samples: []Sample{{0, 2}, {sim.Hour, 4}, {2 * sim.Hour, 9}}}
	if got := MeanOverRange(s, 0, 2*sim.Hour); got != 3 {
		t.Errorf("MeanOverRange = %v, want 3", got)
	}
	if !math.IsNaN(MeanOverRange(s, 10*sim.Hour, 20*sim.Hour)) {
		t.Error("empty range should be NaN")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		p1, p2 := float64(a)/255*100, float64(b)/255*100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := PercentileValues(vals, p1), PercentileValues(vals, p2)
		lo, hi := PercentileValues(vals, 0), PercentileValues(vals, 100)
		return v1 <= v2 && lo <= v1 && v2 <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Mean lies within [Min, Max].
func TestPropertyMeanBounded(t *testing.T) {
	f := func(raw []float64) bool {
		var ss []Sample
		for i, v := range raw {
			// Telemetry values are percentages and rates; restrict to a
			// realistic magnitude so the summation cannot overflow.
			if math.IsNaN(v) || math.Abs(v) > 1e12 {
				continue
			}
			ss = append(ss, Sample{T: sim.Time(i), V: v})
		}
		if len(ss) == 0 {
			return true
		}
		m := Mean(ss)
		return Min(ss) <= m+1e-9 && m <= Max(ss)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAppend(t *testing.T) {
	st := NewStore()
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			l := MustLabels("g", string(rune('a'+g)))
			for i := 0; i < 1000; i++ {
				if err := st.Append("m", l, sim.Time(i), 1); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if st.SampleCount() != 4000 {
		t.Errorf("SampleCount = %d, want 4000", st.SampleCount())
	}
}
