package topology

import "fmt"

// DCRecord is one row of the paper's Appendix D, Table 5: the distribution
// of hypervisors and virtual machines across SAP's data centers.
type DCRecord struct {
	RegionID    int
	Datacenter  string
	Hypervisors int
	VMs         int
}

// Table5 reproduces the paper's Table 5 verbatim. The studied regional
// deployment (~1,800 hypervisors, ~48,000 VMs) corresponds to region 9.
var Table5 = []DCRecord{
	{1, "A", 167, 4985},
	{1, "B", 65, 375},
	{2, "A", 244, 7913},
	{2, "B", 112, 1284},
	{3, "A", 202, 4475},
	{3, "B", 89, 1353},
	{4, "A", 191, 3977},
	{5, "A", 42, 395},
	{6, "A", 150, 5016},
	{7, "A", 63, 1096},
	{8, "A", 227, 5595},
	{8, "B", 270, 4206},
	{8, "D", 966, 34392},
	{9, "A", 751, 19464},
	{9, "B", 1072, 27652},
	{10, "A", 65, 1186},
	{10, "B", 152, 5713},
	{11, "A", 60, 2877},
	{12, "A", 62, 1996},
	{12, "B", 43, 362},
	{13, "A", 274, 7432},
	{13, "B", 99, 1149},
	{13, "D", 239, 3881},
	{14, "A", 330, 3809},
	{14, "B", 307, 5125},
	{15, "A", 209, 5442},
	{16, "A", 40, 504},
	{16, "B", 28, 156},
	{16, "D", 22, 78},
}

// StudyRegionID is the region whose telemetry the paper analyzes in depth.
const StudyRegionID = 9

// Totals aggregates Table 5.
func Totals() (hypervisors, vms int) {
	for _, rec := range Table5 {
		hypervisors += rec.Hypervisors
		vms += rec.VMs
	}
	return hypervisors, vms
}

// RegionRecords returns the Table 5 rows of one region.
func RegionRecords(regionID int) []DCRecord {
	var out []DCRecord
	for _, rec := range Table5 {
		if rec.RegionID == regionID {
			out = append(out, rec)
		}
	}
	return out
}

// BuildSpec controls synthetic region construction. Scale lets tests and
// examples build a down-scaled replica of the studied region: Scale=1
// matches Table 5 node counts, Scale=0.1 builds a 10% replica.
type BuildSpec struct {
	RegionID int
	Scale    float64
	// HANAFraction is the fraction of nodes placed in memory-optimized
	// HANA building blocks (bin-packed per Sec. 3.2). The remainder is
	// general-purpose except for one small GPU BB per DC.
	HANAFraction float64
	// HANAXLFraction is the fraction of HANA nodes placed in big-node
	// building blocks for flavors with ≥3 TB memory (Sec. 3.1: special
	// purpose BBs where "the number of placeable VMs is maximized").
	HANAXLFraction float64
	// ReserveFraction is the fraction of general-purpose building blocks
	// withheld as failover/expansion reserve (Sec. 5.1 (ii)). Reserved
	// blocks appear in telemetry as near-100%-free columns.
	ReserveFraction float64
	// GPUBBNodes adds one GPU building block of this many nodes per DC
	// (Sec. 3.1: special-purpose BBs for GPU flavors). The released
	// dataset contains no GPU workloads (Table 3), so these blocks idle
	// unless an experiment schedules GPU flavors explicitly. Zero
	// disables them.
	GPUBBNodes int
	GPUNode    Capacity
	// GeneralBBNodes / HANABBNodes bound the building-block sizes; the
	// paper reports BBs of 2–128 active nodes.
	GeneralBBNodes int
	HANABBNodes    int
	// Node shapes.
	GeneralNode Capacity
	HANANode    Capacity
	HANAXLNode  Capacity
}

// DefaultBuildSpec mirrors the studied regional deployment at the given
// scale. Node shapes are modeled on typical enterprise hosts: dual-socket
// general nodes and large-memory HANA nodes (the paper reports VMs of up to
// 12 TB memory; HANA hosts must exceed 3 TB, Sec. 3.1).
func DefaultBuildSpec(scale float64) BuildSpec {
	return BuildSpec{
		RegionID:        StudyRegionID,
		Scale:           scale,
		HANAFraction:    0.30,
		HANAXLFraction:  0.35,
		ReserveFraction: 0.18,
		GPUBBNodes:      2,
		GPUNode: Capacity{
			PCPUCores:   64,
			MemoryMB:    1 << 20,
			StorageGB:   8 << 10,
			NetworkGbps: 200,
		},
		GeneralBBNodes: 14,
		HANABBNodes:    8,
		GeneralNode: Capacity{
			PCPUCores:   96,
			MemoryMB:    1 << 20, // 1 TiB
			StorageGB:   8 << 10, // 8 TiB local datastore
			NetworkGbps: 200,
		},
		HANANode: Capacity{
			PCPUCores:   128,
			MemoryMB:    6 << 20,  // 6 TiB
			StorageGB:   16 << 10, // 16 TiB local datastore
			NetworkGbps: 200,
		},
		// Big-node tier hosting the ≥3 TB flavors, including the 12 TiB
		// XLL instances (Table 3: memory allocations up to 12 TB per VM).
		HANAXLNode: Capacity{
			PCPUCores:   224,
			MemoryMB:    16 << 20, // 16 TiB
			StorageGB:   48 << 10,
			NetworkGbps: 200,
		},
	}
}

// Build constructs a region following the spec. Each Table 5 DC of the
// region becomes one DC in its own AZ (the paper: up to two DCs per region,
// one AZ each; region 9 has DCs A and B).
func Build(spec BuildSpec) (*Region, error) {
	if spec.Scale <= 0 {
		return nil, fmt.Errorf("topology: non-positive scale %v", spec.Scale)
	}
	records := RegionRecords(spec.RegionID)
	if len(records) == 0 {
		return nil, fmt.Errorf("topology: no Table 5 records for region %d", spec.RegionID)
	}
	r := NewRegion(fmt.Sprintf("region-%d", spec.RegionID))
	for i, rec := range records {
		az := r.AddAZ(fmt.Sprintf("az-%c", 'a'+i))
		dc := az.AddDC(fmt.Sprintf("dc-%s", rec.Datacenter))
		nodes := int(float64(rec.Hypervisors)*spec.Scale + 0.5)
		if nodes < 4 {
			nodes = 4
		}
		hanaNodes := int(float64(nodes) * spec.HANAFraction)
		generalNodes := nodes - hanaNodes
		hanaXLNodes := int(float64(hanaNodes) * spec.HANAXLFraction)
		hanaNodes -= hanaXLNodes
		// The XL tier must exist so every flavor is placeable; keep at
		// least one two-node BB when HANA capacity exists at all.
		if hanaXLNodes < 2 && hanaNodes+hanaXLNodes >= 2 {
			take := 2 - hanaXLNodes
			hanaXLNodes = 2
			hanaNodes = max(0, hanaNodes-take)
		}
		// Never leave a single-node HANA BB behind; fold it into the XL
		// tier instead.
		if hanaNodes == 1 {
			hanaXLNodes++
			hanaNodes = 0
		}

		if err := addBBs(dc, fmt.Sprintf("%s-gp", dc.Name), GeneralPurpose,
			generalNodes, spec.GeneralBBNodes, spec.GeneralNode); err != nil {
			return nil, err
		}
		// Withhold trailing general-purpose BBs as reserve capacity.
		if spec.ReserveFraction > 0 {
			gps := make([]*BuildingBlock, 0, len(dc.BBs))
			for _, bb := range dc.BBs {
				if bb.Kind == GeneralPurpose {
					gps = append(gps, bb)
				}
			}
			reserve := int(float64(len(gps))*spec.ReserveFraction + 0.5)
			if reserve < 1 && len(gps) >= 2 {
				reserve = 1 // even small DCs keep failover headroom
			}
			if reserve >= len(gps) {
				reserve = len(gps) - 1 // always keep schedulable capacity
			}
			for i := 0; i < reserve; i++ {
				gps[len(gps)-1-i].Reserved = true
			}
		}
		if hanaNodes > 0 {
			if err := addBBs(dc, fmt.Sprintf("%s-hana", dc.Name), HANA,
				hanaNodes, spec.HANABBNodes, spec.HANANode); err != nil {
				return nil, err
			}
		}
		if hanaXLNodes > 0 {
			if err := addBBs(dc, fmt.Sprintf("%s-hanaxl", dc.Name), HANA,
				hanaXLNodes, spec.HANABBNodes, spec.HANAXLNode); err != nil {
				return nil, err
			}
		}
		if spec.GPUBBNodes >= 2 && spec.GPUNode.Valid() {
			if _, err := dc.AddBB(BBID(fmt.Sprintf("%s-gpu-00", dc.Name)), GPU,
				spec.GPUBBNodes, spec.GPUNode); err != nil {
				return nil, err
			}
		}
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// addBBs splits total nodes into building blocks of at most maxPerBB nodes,
// keeping every BB at ≥2 nodes where possible (the paper's minimum).
func addBBs(dc *Datacenter, prefix string, kind BBKind, total, maxPerBB int, cap Capacity) error {
	if total <= 0 {
		return nil
	}
	if maxPerBB < 2 {
		maxPerBB = 2
	}
	idx := 0
	for total > 0 {
		n := maxPerBB
		if total < n {
			n = total
		}
		// Avoid a trailing single-node BB: steal one from the previous
		// allocation by shrinking this one.
		if total-n == 1 && n > 2 {
			n--
		}
		id := BBID(fmt.Sprintf("%s-%02d", prefix, idx))
		if _, err := dc.AddBB(id, kind, n, cap); err != nil {
			return err
		}
		total -= n
		idx++
	}
	return nil
}
