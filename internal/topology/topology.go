// Package topology models the hierarchical cloud infrastructure of the SAP
// Cloud Infrastructure dataset paper (Fig. 1): Region → Availability Zone →
// Data Center → Building Block → Node.
//
// A building block (BB) corresponds to a vSphere cluster and is what the
// OpenStack Nova scheduler sees as a single "compute host"; nodes are the
// individual ESXi hypervisors inside it. Nodes within a BB are homogeneous;
// BBs within an AZ may differ (Sec. 3.2).
package topology

import (
	"errors"
	"fmt"
	"sort"
)

// Capacity describes the physical resources of a single compute node.
type Capacity struct {
	PCPUCores   int     // physical CPU cores
	MemoryMB    int64   // physical memory in MiB
	StorageGB   int64   // local datastore capacity in GiB
	NetworkGbps float64 // NIC line rate (the paper's DC uses 200 Gbps)
}

// Valid reports whether every capacity dimension is positive.
func (c Capacity) Valid() bool {
	return c.PCPUCores > 0 && c.MemoryMB > 0 && c.StorageGB > 0 && c.NetworkGbps > 0
}

// BBKind classifies building blocks. Most BBs host general-purpose and SAP
// application-server workloads; a reserved subset hosts flavors with special
// requirements (Sec. 3.1: GPU workloads and VMs with ≥3 TB memory).
type BBKind int

const (
	// GeneralPurpose building blocks accept ordinary flavors and are
	// load-balanced by default.
	GeneralPurpose BBKind = iota
	// HANA building blocks host memory-intensive SAP HANA VMs and are
	// explicitly bin-packed to maximize memory utilization (Sec. 3.2).
	HANA
	// GPU building blocks are reserved for GPU flavors.
	GPU
)

// String implements fmt.Stringer.
func (k BBKind) String() string {
	switch k {
	case GeneralPurpose:
		return "general-purpose"
	case HANA:
		return "hana"
	case GPU:
		return "gpu"
	default:
		return fmt.Sprintf("BBKind(%d)", int(k))
	}
}

// NodeID uniquely identifies a node within a region.
type NodeID string

// BBID uniquely identifies a building block within a region.
type BBID string

// Node is a single physical hypervisor (ESXi host).
type Node struct {
	ID       NodeID
	Capacity Capacity
	BB       *BuildingBlock // parent, set by AddNodes
	Index    int            // position within the building block
	// Maintenance marks a node that is temporarily out of service;
	// schedulers must skip it and heatmaps show missing data (white
	// cells in the paper's figures).
	Maintenance bool
}

// Datacenter returns the node's enclosing data center.
func (n *Node) Datacenter() *Datacenter { return n.BB.DC }

// BuildingBlock is a vSphere cluster of 2–128 homogeneous nodes; it is the
// unit Nova places onto ("compute host" in OpenStack terms).
type BuildingBlock struct {
	ID    BBID
	Kind  BBKind
	DC    *Datacenter // parent
	Nodes []*Node
	// Reserved marks capacity withheld from placement for emergency
	// failover, redundancy, and scalability demands (Sec. 5.1): the
	// near-idle columns of the paper's heatmaps. Reserved blocks are
	// monitored but receive no scheduled VMs.
	Reserved bool
}

// TotalCapacity sums node capacities across the building block, skipping
// nodes in maintenance.
func (b *BuildingBlock) TotalCapacity() Capacity {
	var total Capacity
	for _, n := range b.Nodes {
		if n.Maintenance {
			continue
		}
		total.PCPUCores += n.Capacity.PCPUCores
		total.MemoryMB += n.Capacity.MemoryMB
		total.StorageGB += n.Capacity.StorageGB
		total.NetworkGbps += n.Capacity.NetworkGbps
	}
	return total
}

// ActiveNodes returns the nodes not in maintenance.
func (b *BuildingBlock) ActiveNodes() []*Node {
	active := make([]*Node, 0, len(b.Nodes))
	for _, n := range b.Nodes {
		if !n.Maintenance {
			active = append(active, n)
		}
	}
	return active
}

// Datacenter hosts multiple building blocks and provides supporting
// infrastructure. Within this study a single DC is the placement and
// scheduling domain (Sec. 3.1, "cross-datacenter migrations are out of
// scope").
type Datacenter struct {
	Name string
	AZ   *AvailabilityZone
	BBs  []*BuildingBlock
}

// Nodes returns every node in the data center in deterministic order.
func (d *Datacenter) Nodes() []*Node {
	var nodes []*Node
	for _, bb := range d.BBs {
		nodes = append(nodes, bb.Nodes...)
	}
	return nodes
}

// NodeCount reports the number of hypervisors in the DC.
func (d *Datacenter) NodeCount() int {
	n := 0
	for _, bb := range d.BBs {
		n += len(bb.Nodes)
	}
	return n
}

// AvailabilityZone logically groups independent, geographically co-located
// data centers for high availability.
type AvailabilityZone struct {
	Name   string
	Region *Region
	DCs    []*Datacenter
}

// Region is the top of the hierarchy; it contains one or more AZs.
type Region struct {
	Name string
	AZs  []*AvailabilityZone

	nodesByID map[NodeID]*Node
	bbsByID   map[BBID]*BuildingBlock
}

// NewRegion returns an empty region.
func NewRegion(name string) *Region {
	return &Region{
		Name:      name,
		nodesByID: make(map[NodeID]*Node),
		bbsByID:   make(map[BBID]*BuildingBlock),
	}
}

// AddAZ creates and attaches a new availability zone.
func (r *Region) AddAZ(name string) *AvailabilityZone {
	az := &AvailabilityZone{Name: name, Region: r}
	r.AZs = append(r.AZs, az)
	return az
}

// AddDC creates and attaches a new data center to the AZ.
func (az *AvailabilityZone) AddDC(name string) *Datacenter {
	dc := &Datacenter{Name: name, AZ: az}
	az.DCs = append(az.DCs, dc)
	return dc
}

// Errors returned by topology construction.
var (
	ErrDuplicateBB    = errors.New("topology: duplicate building block id")
	ErrDuplicateNode  = errors.New("topology: duplicate node id")
	ErrBadCapacity    = errors.New("topology: invalid node capacity")
	ErrBadNodeCount   = errors.New("topology: building block must have at least one node")
	ErrUnknownBB      = errors.New("topology: unknown building block")
	ErrUnknownNode    = errors.New("topology: unknown node")
	ErrNoRegionParent = errors.New("topology: datacenter is not attached to a region")
)

// AddBB creates a building block with count homogeneous nodes of the given
// capacity. Node IDs are derived as "<bbID>-n<index>".
func (dc *Datacenter) AddBB(id BBID, kind BBKind, count int, cap Capacity) (*BuildingBlock, error) {
	if dc.AZ == nil || dc.AZ.Region == nil {
		return nil, ErrNoRegionParent
	}
	if count < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadNodeCount, count)
	}
	if !cap.Valid() {
		return nil, fmt.Errorf("%w: %+v", ErrBadCapacity, cap)
	}
	r := dc.AZ.Region
	if _, exists := r.bbsByID[id]; exists {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateBB, id)
	}
	bb := &BuildingBlock{ID: id, Kind: kind, DC: dc}
	for i := 0; i < count; i++ {
		nid := NodeID(fmt.Sprintf("%s-n%03d", id, i))
		if _, exists := r.nodesByID[nid]; exists {
			return nil, fmt.Errorf("%w: %s", ErrDuplicateNode, nid)
		}
		n := &Node{ID: nid, Capacity: cap, BB: bb, Index: i}
		bb.Nodes = append(bb.Nodes, n)
		r.nodesByID[nid] = n
	}
	dc.BBs = append(dc.BBs, bb)
	r.bbsByID[id] = bb
	return bb, nil
}

// Node looks up a node by ID.
func (r *Region) Node(id NodeID) (*Node, error) {
	n, ok := r.nodesByID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	return n, nil
}

// BB looks up a building block by ID.
func (r *Region) BB(id BBID) (*BuildingBlock, error) {
	bb, ok := r.bbsByID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownBB, id)
	}
	return bb, nil
}

// BBs returns every building block in the region sorted by ID.
func (r *Region) BBs() []*BuildingBlock {
	out := make([]*BuildingBlock, 0, len(r.bbsByID))
	for _, bb := range r.bbsByID {
		out = append(out, bb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Nodes returns every node in the region sorted by ID.
func (r *Region) Nodes() []*Node {
	out := make([]*Node, 0, len(r.nodesByID))
	for _, n := range r.nodesByID {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NodeCount reports the total hypervisor count across the region.
func (r *Region) NodeCount() int { return len(r.nodesByID) }

// Datacenters returns every DC in the region in AZ order.
func (r *Region) Datacenters() []*Datacenter {
	var out []*Datacenter
	for _, az := range r.AZs {
		out = append(out, az.DCs...)
	}
	return out
}

// Validate performs structural sanity checks: parent pointers consistent,
// node capacities valid, BB node homogeneity.
func (r *Region) Validate() error {
	for _, az := range r.AZs {
		if az.Region != r {
			return fmt.Errorf("topology: AZ %s has wrong region pointer", az.Name)
		}
		for _, dc := range az.DCs {
			if dc.AZ != az {
				return fmt.Errorf("topology: DC %s has wrong AZ pointer", dc.Name)
			}
			for _, bb := range dc.BBs {
				if bb.DC != dc {
					return fmt.Errorf("topology: BB %s has wrong DC pointer", bb.ID)
				}
				if len(bb.Nodes) == 0 {
					return fmt.Errorf("%w: %s", ErrBadNodeCount, bb.ID)
				}
				first := bb.Nodes[0].Capacity
				for _, n := range bb.Nodes {
					if n.BB != bb {
						return fmt.Errorf("topology: node %s has wrong BB pointer", n.ID)
					}
					if !n.Capacity.Valid() {
						return fmt.Errorf("%w: node %s", ErrBadCapacity, n.ID)
					}
					if n.Capacity != first {
						return fmt.Errorf("topology: BB %s is not homogeneous (node %s)", bb.ID, n.ID)
					}
				}
			}
		}
	}
	return nil
}
