package topology

import (
	"errors"
	"testing"
	"testing/quick"
)

func testCapacity() Capacity {
	return Capacity{PCPUCores: 64, MemoryMB: 512 << 10, StorageGB: 8 << 10, NetworkGbps: 200}
}

func buildSmallRegion(t *testing.T) *Region {
	t.Helper()
	r := NewRegion("test")
	az := r.AddAZ("az-a")
	dc := az.AddDC("dc-a")
	if _, err := dc.AddBB("bb-0", GeneralPurpose, 4, testCapacity()); err != nil {
		t.Fatal(err)
	}
	if _, err := dc.AddBB("bb-1", HANA, 2, testCapacity()); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCapacityValid(t *testing.T) {
	if !testCapacity().Valid() {
		t.Error("test capacity should be valid")
	}
	invalid := []Capacity{
		{},
		{PCPUCores: -1, MemoryMB: 1, StorageGB: 1, NetworkGbps: 1},
		{PCPUCores: 1, MemoryMB: 0, StorageGB: 1, NetworkGbps: 1},
		{PCPUCores: 1, MemoryMB: 1, StorageGB: 0, NetworkGbps: 1},
		{PCPUCores: 1, MemoryMB: 1, StorageGB: 1, NetworkGbps: 0},
	}
	for i, c := range invalid {
		if c.Valid() {
			t.Errorf("case %d: %+v reported valid", i, c)
		}
	}
}

func TestHierarchyConstruction(t *testing.T) {
	r := buildSmallRegion(t)
	if got := r.NodeCount(); got != 6 {
		t.Errorf("NodeCount = %d, want 6", got)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	bb, err := r.BB("bb-0")
	if err != nil {
		t.Fatal(err)
	}
	if bb.Kind != GeneralPurpose {
		t.Errorf("bb-0 kind = %v, want general-purpose", bb.Kind)
	}
	if len(bb.Nodes) != 4 {
		t.Errorf("bb-0 has %d nodes, want 4", len(bb.Nodes))
	}
	n, err := r.Node("bb-0-n002")
	if err != nil {
		t.Fatal(err)
	}
	if n.BB != bb {
		t.Error("node parent pointer mismatch")
	}
	if n.Index != 2 {
		t.Errorf("node index = %d, want 2", n.Index)
	}
	if n.Datacenter().Name != "dc-a" {
		t.Errorf("node DC = %q, want dc-a", n.Datacenter().Name)
	}
}

func TestDuplicateBBRejected(t *testing.T) {
	r := buildSmallRegion(t)
	dc := r.AZs[0].DCs[0]
	if _, err := dc.AddBB("bb-0", GeneralPurpose, 2, testCapacity()); !errors.Is(err, ErrDuplicateBB) {
		t.Errorf("duplicate BB error = %v, want ErrDuplicateBB", err)
	}
}

func TestBadBBInputs(t *testing.T) {
	r := NewRegion("t")
	dc := r.AddAZ("a").AddDC("d")
	if _, err := dc.AddBB("x", GeneralPurpose, 0, testCapacity()); !errors.Is(err, ErrBadNodeCount) {
		t.Errorf("zero nodes error = %v, want ErrBadNodeCount", err)
	}
	if _, err := dc.AddBB("y", GeneralPurpose, 2, Capacity{}); !errors.Is(err, ErrBadCapacity) {
		t.Errorf("zero capacity error = %v, want ErrBadCapacity", err)
	}
	orphan := &Datacenter{Name: "orphan"}
	if _, err := orphan.AddBB("z", GeneralPurpose, 2, testCapacity()); !errors.Is(err, ErrNoRegionParent) {
		t.Errorf("orphan DC error = %v, want ErrNoRegionParent", err)
	}
}

func TestLookupErrors(t *testing.T) {
	r := buildSmallRegion(t)
	if _, err := r.Node("nope"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown node error = %v", err)
	}
	if _, err := r.BB("nope"); !errors.Is(err, ErrUnknownBB) {
		t.Errorf("unknown BB error = %v", err)
	}
}

func TestTotalCapacitySkipsMaintenance(t *testing.T) {
	r := buildSmallRegion(t)
	bb, _ := r.BB("bb-0")
	full := bb.TotalCapacity()
	if full.PCPUCores != 4*64 {
		t.Errorf("total cores = %d, want %d", full.PCPUCores, 4*64)
	}
	bb.Nodes[0].Maintenance = true
	reduced := bb.TotalCapacity()
	if reduced.PCPUCores != 3*64 {
		t.Errorf("total cores with maintenance = %d, want %d", reduced.PCPUCores, 3*64)
	}
	if got := len(bb.ActiveNodes()); got != 3 {
		t.Errorf("active nodes = %d, want 3", got)
	}
}

func TestRegionIterationDeterministic(t *testing.T) {
	r := buildSmallRegion(t)
	a := r.Nodes()
	b := r.Nodes()
	if len(a) != len(b) {
		t.Fatal("node list length varies")
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("node iteration order is not deterministic")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].ID >= a[i].ID {
			t.Fatal("nodes not sorted by ID")
		}
	}
	bbs := r.BBs()
	for i := 1; i < len(bbs); i++ {
		if bbs[i-1].ID >= bbs[i].ID {
			t.Fatal("BBs not sorted by ID")
		}
	}
}

func TestTable5Totals(t *testing.T) {
	hv, vms := Totals()
	// Paper Sec. 3: "more than 6,000 hypervisors" and "more than 200,000
	// active VMs" platform-wide; Table 5 sums to the published rows.
	if hv < 6000 {
		t.Errorf("total hypervisors = %d, want >6000", hv)
	}
	if vms < 160000 {
		t.Errorf("total VMs = %d, want a six-figure count", vms)
	}
}

func TestStudyRegionMatchesPaper(t *testing.T) {
	recs := RegionRecords(StudyRegionID)
	if len(recs) != 2 {
		t.Fatalf("region 9 has %d DCs, want 2", len(recs))
	}
	hv := recs[0].Hypervisors + recs[1].Hypervisors
	vms := recs[0].VMs + recs[1].VMs
	// The paper studies ~1,800 hypervisors and ~48,000 VMs.
	if hv < 1700 || hv > 1900 {
		t.Errorf("study region hypervisors = %d, want ≈1800", hv)
	}
	if vms < 45000 || vms > 50000 {
		t.Errorf("study region VMs = %d, want ≈48000", vms)
	}
}

func TestBuildScaledRegion(t *testing.T) {
	spec := DefaultBuildSpec(0.05)
	r, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(r.Datacenters()) != 2 {
		t.Errorf("DCs = %d, want 2", len(r.Datacenters()))
	}
	// 5% of 1823 ≈ 91 nodes.
	if n := r.NodeCount(); n < 60 || n > 130 {
		t.Errorf("scaled node count = %d, want ≈91", n)
	}
	// Both kinds of BB must exist and no BB may exceed the size bounds.
	kinds := map[BBKind]int{}
	for _, bb := range r.BBs() {
		kinds[bb.Kind]++
		if len(bb.Nodes) < 2 || len(bb.Nodes) > 128 {
			t.Errorf("BB %s has %d nodes, outside the paper's 2..128", bb.ID, len(bb.Nodes))
		}
	}
	if kinds[GeneralPurpose] == 0 || kinds[HANA] == 0 {
		t.Errorf("BB kind distribution = %v, want both general-purpose and hana", kinds)
	}
	if kinds[GPU] != 2 {
		t.Errorf("GPU BBs = %d, want one per DC", kinds[GPU])
	}
	// Reserved failover blocks exist and are general purpose.
	reserved := 0
	for _, bb := range r.BBs() {
		if bb.Reserved {
			reserved++
			if bb.Kind != GeneralPurpose {
				t.Errorf("reserved BB %s has kind %v", bb.ID, bb.Kind)
			}
		}
	}
	if reserved == 0 {
		t.Error("no reserved failover blocks")
	}
}

func TestBuildRejectsBadInputs(t *testing.T) {
	if _, err := Build(BuildSpec{RegionID: StudyRegionID, Scale: 0}); err == nil {
		t.Error("zero scale accepted")
	}
	spec := DefaultBuildSpec(0.1)
	spec.RegionID = 999
	if _, err := Build(spec); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestBBKindString(t *testing.T) {
	cases := map[BBKind]string{GeneralPurpose: "general-purpose", HANA: "hana", GPU: "gpu", BBKind(42): "BBKind(42)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(k), got, want)
		}
	}
}

// Property: Build never produces single-node BBs and always validates, for
// any reasonable scale.
func TestPropertyBuildWellFormed(t *testing.T) {
	f := func(raw uint8) bool {
		scale := 0.02 + float64(raw)/255.0*0.2 // 0.02 .. 0.22
		r, err := Build(DefaultBuildSpec(scale))
		if err != nil {
			return false
		}
		if r.Validate() != nil {
			return false
		}
		for _, bb := range r.BBs() {
			if len(bb.Nodes) < 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
