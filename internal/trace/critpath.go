package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// PhaseStat aggregates all spans sharing one name across the span set.
type PhaseStat struct {
	Name  string
	Count int
	Total time.Duration
	Mean  time.Duration
	Max   time.Duration
}

// Analysis is the result of Analyze: sweep makespan, the straggler trace,
// the critical path through it, and the per-phase latency breakdown.
type Analysis struct {
	Start    int64 // earliest span start, microseconds
	End      int64 // latest span end, microseconds
	Makespan time.Duration
	Traces   int
	Spans    int

	// Straggler is the trace whose root span ends last — the cell that
	// set the sweep's wall clock.
	Straggler string
	// Critical is the chain of spans from the straggler's root down to
	// the leaf that finished last: the path whose latency bounds the
	// sweep end-to-end.
	Critical []Span

	Phases []PhaseStat
}

// Analyze computes the makespan, critical path, and per-phase latency
// breakdown of a merged span set. The critical path descends from the
// last-finishing root span into whichever child ends last, repeatedly: at
// every level, that child is the reason the parent (and so the sweep)
// wasn't done sooner.
func Analyze(spans []Span) Analysis {
	merged := Merge(spans)
	a := Analysis{Spans: len(merged)}
	if len(merged) == 0 {
		return a
	}

	children := make(map[[2]string][]Span)
	roots := make(map[string]Span)
	a.Start = merged[0].Start
	for _, s := range merged {
		if s.Start < a.Start {
			a.Start = s.Start
		}
		if s.End > a.End {
			a.End = s.End
		}
		if s.Parent == "" {
			if r, ok := roots[s.Trace]; !ok || s.Start < r.Start {
				roots[s.Trace] = s
			}
		} else {
			k := [2]string{s.Trace, s.Parent}
			children[k] = append(children[k], s)
		}
	}
	a.Traces = len(roots)
	a.Makespan = time.Duration(a.End-a.Start) * time.Microsecond

	// Straggler: the trace whose root ends last (ties broken by trace ID
	// for determinism).
	var straggler Span
	first := true
	for _, r := range roots {
		if first || r.End > straggler.End ||
			(r.End == straggler.End && r.Trace < straggler.Trace) {
			straggler = r
			first = false
		}
	}
	a.Straggler = straggler.Trace

	// Descend into the child that ends last at each level.
	cur := straggler
	a.Critical = append(a.Critical, cur)
	for {
		kids := children[[2]string{cur.Trace, cur.ID}]
		if len(kids) == 0 {
			break
		}
		next := kids[0]
		for _, k := range kids[1:] {
			if k.End > next.End || (k.End == next.End && k.ID < next.ID) {
				next = k
			}
		}
		a.Critical = append(a.Critical, next)
		cur = next
	}

	byName := make(map[string]*PhaseStat)
	for _, s := range merged {
		st := byName[s.Name]
		if st == nil {
			st = &PhaseStat{Name: s.Name}
			byName[s.Name] = st
		}
		d := s.Duration()
		st.Count++
		st.Total += d
		if d > st.Max {
			st.Max = d
		}
	}
	for _, st := range byName {
		st.Mean = st.Total / time.Duration(st.Count)
		a.Phases = append(a.Phases, *st)
	}
	sort.Slice(a.Phases, func(i, j int) bool {
		if a.Phases[i].Total != a.Phases[j].Total {
			return a.Phases[i].Total > a.Phases[j].Total
		}
		return a.Phases[i].Name < a.Phases[j].Name
	})
	return a
}

// Report renders the analysis as a human-readable critical-path report.
func (a Analysis) Report(w io.Writer) {
	fmt.Fprintf(w, "trace: %d spans across %d cells, makespan %s\n",
		a.Spans, a.Traces, round(a.Makespan))
	if a.Straggler == "" {
		return
	}
	fmt.Fprintf(w, "\nstraggler cell: %s\ncritical path:\n", a.Straggler)
	for i, s := range a.Critical {
		attrs := ""
		if wk := s.Attrs["worker"]; wk != "" {
			attrs = " worker=" + wk
		}
		fmt.Fprintf(w, "%s%-18s %10s%s\n",
			indent(i), s.Name, round(s.Duration()), attrs)
	}
	fmt.Fprintf(w, "\nper-phase latency (by total):\n")
	fmt.Fprintf(w, "  %-18s %6s %12s %12s %12s\n", "phase", "count", "total", "mean", "max")
	for _, p := range a.Phases {
		fmt.Fprintf(w, "  %-18s %6d %12s %12s %12s\n",
			p.Name, p.Count, round(p.Total), round(p.Mean), round(p.Max))
	}
}

func indent(depth int) string {
	s := "  "
	for i := 0; i < depth; i++ {
		s += "  "
	}
	return s
}

func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d
	}
}
