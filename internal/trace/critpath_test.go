package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestAnalyzeCriticalPath(t *testing.T) {
	// Two cells: the straggler finishes at t=1s, dominated by its run
	// phase; the fast cell finishes at 300ms.
	spans := []Span{
		span("slow", "cell-1", "", "cell", 0, 1_000_000),
		span("slow", "cell-1/q1", "cell-1", "queue-wait", 0, 100_000),
		span("slow", "cell-1/a1", "cell-1", "attempt", 100_000, 1_000_000),
		span("slow", "cell-1/a1/s1", "cell-1/a1", "build", 100_000, 150_000),
		span("slow", "cell-1/a1/s2", "cell-1/a1", "run", 150_000, 980_000),
		span("fast", "cell-2", "", "cell", 0, 300_000),
		span("fast", "cell-2/a1", "cell-2", "attempt", 50_000, 300_000),
	}
	a := Analyze(spans)

	if a.Traces != 2 || a.Spans != len(spans) {
		t.Fatalf("traces=%d spans=%d", a.Traces, a.Spans)
	}
	if a.Makespan != time.Second {
		t.Fatalf("makespan = %s, want 1s", a.Makespan)
	}
	if a.Straggler != "slow" {
		t.Fatalf("straggler = %q, want slow", a.Straggler)
	}
	var path []string
	for _, s := range a.Critical {
		path = append(path, s.Name)
	}
	want := "cell>attempt>run"
	if got := strings.Join(path, ">"); got != want {
		t.Fatalf("critical path %q, want %q", got, want)
	}

	if len(a.Phases) == 0 || a.Phases[0].Name != "cell" {
		t.Fatalf("phase breakdown not sorted by total: %+v", a.Phases)
	}
	for _, p := range a.Phases {
		if p.Name == "run" {
			if p.Count != 1 || p.Total != 830*time.Millisecond {
				t.Fatalf("run phase stat wrong: %+v", p)
			}
		}
	}

	var buf bytes.Buffer
	a.Report(&buf)
	out := buf.String()
	for _, needle := range []string{"straggler cell: slow", "critical path:", "run", "per-phase latency"} {
		if !strings.Contains(out, needle) {
			t.Errorf("report missing %q:\n%s", needle, out)
		}
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if a.Spans != 0 || a.Traces != 0 || len(a.Critical) != 0 {
		t.Fatalf("empty analysis not empty: %+v", a)
	}
	var buf bytes.Buffer
	a.Report(&buf) // must not panic
}
