// Package trace is a dependency-free span model for the cell lifecycle,
// with a Chrome trace-event JSON exporter loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
//
// A Span is a named wall-clock interval inside a trace. Traces group the
// spans of one sweep cell (scenario/variant/seed); the dispatcher derives
// its spans from the journal, workers ship theirs over the dispatch wire
// protocol, and the exporter merges both into one deterministic file.
//
// Span IDs are strings and must be unique within a trace. Processes mint
// IDs in disjoint namespaces by construction (the dispatcher uses
// "cell-<job>" and "<job>/a<attempt>" prefixes, worker builders append
// "/s<n>"), so merging never needs coordination.
package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"
)

// Span is one named interval (or instant, when End == Start) in a trace.
// Times are wall-clock microseconds since the Unix epoch: coarse enough to
// serialize compactly, fine enough for phase attribution.
type Span struct {
	Trace  string            `json:"trace"`
	ID     string            `json:"id"`
	Parent string            `json:"parent,omitempty"`
	Name   string            `json:"name"`
	Start  int64             `json:"start"`
	End    int64             `json:"end"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Duration returns the span length, clamped to non-negative.
func (s Span) Duration() time.Duration {
	if s.End <= s.Start {
		return 0
	}
	return time.Duration(s.End-s.Start) * time.Microsecond
}

// Validate rejects spans that cannot be exported coherently.
func (s Span) Validate() error {
	if s.Trace == "" {
		return errors.New("trace: span has no trace ID")
	}
	if s.ID == "" {
		return errors.New("trace: span has no ID")
	}
	if s.Name == "" {
		return errors.New("trace: span has no name")
	}
	if s.End < s.Start {
		return fmt.Errorf("trace: span %s ends (%d) before it starts (%d)", s.ID, s.End, s.Start)
	}
	return nil
}

// Micros converts a wall-clock time to span microseconds.
func Micros(t time.Time) int64 { return t.UnixMicro() }

// Builder mints spans for one trace with sequentially-numbered IDs under a
// fixed prefix, so concurrent builders in different processes (or attempts)
// can never collide. It is not safe for concurrent use; callers serialize.
type Builder struct {
	trace  string
	parent string
	prefix string
	seq    int
	spans  []Span
}

// NewBuilder returns a builder whose spans belong to trace, default to
// parent, and take IDs prefix + "/s<n>".
func NewBuilder(trace, parent, prefix string) *Builder {
	return &Builder{trace: trace, parent: parent, prefix: prefix}
}

// Add records a finished span under the builder's default parent and
// returns its ID.
func (b *Builder) Add(name string, start, end time.Time, attrs map[string]string) string {
	return b.AddChild(b.parent, name, start, end, attrs)
}

// AddChild records a finished span under an explicit parent span ID.
func (b *Builder) AddChild(parent, name string, start, end time.Time, attrs map[string]string) string {
	b.seq++
	id := fmt.Sprintf("%s/s%d", b.prefix, b.seq)
	b.spans = append(b.spans, Span{
		Trace:  b.trace,
		ID:     id,
		Parent: parent,
		Name:   name,
		Start:  Micros(start),
		End:    Micros(end),
		Attrs:  attrs,
	})
	return id
}

// Drain returns the accumulated spans and resets the buffer; the sequence
// counter keeps running so re-added spans never reuse IDs.
func (b *Builder) Drain() []Span {
	out := b.spans
	b.spans = nil
	return out
}

// Requeue puts spans back at the front of the buffer after a failed send.
func (b *Builder) Requeue(spans []Span) {
	if len(spans) == 0 {
		return
	}
	b.spans = append(spans, b.spans...)
}

// Len reports the number of buffered spans.
func (b *Builder) Len() int { return len(b.spans) }

// Sort orders spans deterministically: by trace, then start time, then
// longest-first (so parents sort before the children they contain), then ID
// as the final tiebreak. Exports, merges, and analysis all use this order.
func Sort(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End > b.End
		}
		return a.ID < b.ID
	})
}

// Merge combines span streams into one deterministic slice: duplicates
// (same trace + ID, e.g. a heartbeat retried after a dropped response) keep
// the first occurrence, and spans whose parent is absent are adopted by
// their trace's root span (the unparented span with the earliest start) so
// a crash that loses an intermediate span never detaches a subtree.
func Merge(streams ...[]Span) []Span {
	var merged []Span
	seen := make(map[[2]string]bool)
	for _, stream := range streams {
		for _, s := range stream {
			k := [2]string{s.Trace, s.ID}
			if seen[k] {
				continue
			}
			seen[k] = true
			merged = append(merged, s)
		}
	}
	Sort(merged)

	// Index span IDs and find each trace's root (first unparented span in
	// sorted order, i.e. earliest start).
	ids := make(map[[2]string]bool, len(merged))
	root := make(map[string]string)
	for _, s := range merged {
		ids[[2]string{s.Trace, s.ID}] = true
		if s.Parent == "" {
			if _, ok := root[s.Trace]; !ok {
				root[s.Trace] = s.ID
			}
		}
	}
	for i := range merged {
		s := &merged[i]
		if s.Parent == "" || ids[[2]string{s.Trace, s.Parent}] {
			continue
		}
		if r, ok := root[s.Trace]; ok && r != s.ID {
			s.Parent = r
		} else {
			s.Parent = ""
		}
	}
	return merged
}

// chromeEvent is one entry of the Chrome trace-event format's JSON Array
// flavor. Complete ("X") events carry ts+dur in microseconds; metadata
// ("M") events name processes and threads.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports spans as Chrome trace-event JSON. Each trace
// becomes one process (pid); within a trace, spans are packed onto thread
// lanes (tid) such that a span shares a lane with its enclosing ancestors —
// Chrome/Perfetto infer nesting from containment on the same tid. Output is
// deterministic for a given span set.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	merged := Merge(spans)
	for _, s := range merged {
		if err := s.Validate(); err != nil {
			return err
		}
	}

	var events []chromeEvent
	pids := make(map[string]int)
	for _, s := range merged { // merged is sorted by trace
		if _, ok := pids[s.Trace]; !ok {
			pid := len(pids) + 1
			pids[s.Trace] = pid
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", PID: pid,
				Args: map[string]any{"name": s.Trace},
			})
		}
	}

	byTrace := make(map[string][]Span)
	for _, s := range merged {
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	traces := make([]string, 0, len(byTrace))
	for t := range byTrace {
		traces = append(traces, t)
	}
	sort.Strings(traces)

	// Lane assignment per trace: walk spans in sorted order (start asc,
	// longer-first) and pack them onto thread lanes. Chrome nests the X
	// events of one tid by strict containment, so a lane can take a span
	// only if it nests inside the lane's innermost still-open span (or
	// starts after everything on the lane has closed). Each lane keeps a
	// stack of open span ends to enforce exactly that; the parent's lane
	// is tried first so subtrees stay visually together.
	for _, t := range traces {
		group := byTrace[t]
		pid := pids[t]
		var lanes [][]int64        // per-lane stack of open span ends
		laneOf := map[string]int{} // span ID -> lane
		fits := func(i int, s Span) bool {
			stack := lanes[i]
			for len(stack) > 0 && stack[len(stack)-1] <= s.Start {
				stack = stack[:len(stack)-1]
			}
			lanes[i] = stack
			return len(stack) == 0 || s.End <= stack[len(stack)-1]
		}
		for _, s := range group {
			tid := -1
			if s.Parent != "" {
				if pl, ok := laneOf[s.Parent]; ok && fits(pl, s) {
					tid = pl
				}
			}
			if tid == -1 {
				for i := range lanes {
					if fits(i, s) {
						tid = i
						break
					}
				}
			}
			if tid == -1 {
				lanes = append(lanes, nil)
				tid = len(lanes) - 1
			}
			lanes[tid] = append(lanes[tid], s.End)
			laneOf[s.ID] = tid

			args := map[string]any{"id": s.ID}
			if s.Parent != "" {
				args["parent"] = s.Parent
			}
			for k, v := range s.Attrs {
				args[k] = v
			}
			dur := s.End - s.Start
			events = append(events, chromeEvent{
				Name: s.Name, Ph: "X", TS: s.Start, Dur: &dur,
				PID: pid, TID: tid + 1, Args: args,
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ReadChromeTrace reconstructs spans from a file written by
// WriteChromeTrace. It reads only "X" events and relies on the id/parent
// args the exporter embeds; process_name metadata recovers the trace ID.
func ReadChromeTrace(r io.Reader) ([]Span, error) {
	var f chromeFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: decode chrome trace: %w", err)
	}
	names := make(map[int]string)
	for _, ev := range f.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			if n, ok := ev.Args["name"].(string); ok {
				names[ev.PID] = n
			}
		}
	}
	var spans []Span
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		s := Span{
			Trace: names[ev.PID],
			Name:  ev.Name,
			Start: ev.TS,
		}
		if s.Trace == "" {
			s.Trace = fmt.Sprintf("pid-%d", ev.PID)
		}
		if ev.Dur != nil {
			s.End = ev.TS + *ev.Dur
		} else {
			s.End = ev.TS
		}
		for k, v := range ev.Args {
			str, ok := v.(string)
			if !ok {
				continue
			}
			switch k {
			case "id":
				s.ID = str
			case "parent":
				s.Parent = str
			default:
				if s.Attrs == nil {
					s.Attrs = make(map[string]string)
				}
				s.Attrs[k] = str
			}
		}
		if s.ID == "" {
			return nil, fmt.Errorf("trace: X event %q has no id arg (not written by this exporter?)", ev.Name)
		}
		spans = append(spans, s)
	}
	Sort(spans)
	return spans, nil
}
