package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

func span(tr, id, parent, name string, start, end int64) Span {
	return Span{Trace: tr, ID: id, Parent: parent, Name: name, Start: start, End: end}
}

func TestValidate(t *testing.T) {
	good := span("t", "a", "", "cell", 0, 10)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid span rejected: %v", err)
	}
	for _, bad := range []Span{
		span("", "a", "", "cell", 0, 10),
		span("t", "", "", "cell", 0, 10),
		span("t", "a", "", "", 0, 10),
		span("t", "a", "", "cell", 10, 0),
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", bad)
		}
	}
}

func TestBuilderIDsAndRequeue(t *testing.T) {
	b := NewBuilder("t", "root", "job/a1")
	t0 := time.UnixMicro(1000)
	id1 := b.Add("build", t0, t0.Add(time.Millisecond), nil)
	id2 := b.Add("run", t0.Add(time.Millisecond), t0.Add(2*time.Millisecond), map[string]string{"k": "v"})
	if id1 != "job/a1/s1" || id2 != "job/a1/s2" {
		t.Fatalf("ids = %q, %q", id1, id2)
	}
	batch := b.Drain()
	if len(batch) != 2 || b.Len() != 0 {
		t.Fatalf("drain: %d spans, %d left", len(batch), b.Len())
	}
	// A failed send requeues the batch; new spans mint fresh IDs after it.
	b.Requeue(batch)
	id3 := b.Add("upload", t0, t0.Add(time.Millisecond), nil)
	if id3 != "job/a1/s3" {
		t.Fatalf("post-requeue id = %q, want job/a1/s3", id3)
	}
	all := b.Drain()
	if len(all) != 3 || all[0].ID != "job/a1/s1" || all[2].ID != "job/a1/s3" {
		t.Fatalf("requeued order wrong: %+v", all)
	}
	if all[0].Parent != "root" {
		t.Fatalf("builder parent not applied: %+v", all[0])
	}
}

func TestMergeDedupAndOrphanAdoption(t *testing.T) {
	root := span("cell", "cell-1", "", "cell", 0, 100)
	attempt := span("cell", "cell-1/a1", "cell-1", "attempt", 10, 90)
	dup := attempt
	dup.Name = "attempt-duplicate-should-lose"
	// Orphan: parent span was never journaled (crashed worker).
	orphan := span("cell", "cell-1/a1/s9", "cell-1/a1/s-missing", "upload", 20, 30)

	merged := Merge([]Span{attempt, root}, []Span{dup, orphan})
	if len(merged) != 3 {
		t.Fatalf("merged %d spans, want 3 (dup dropped)", len(merged))
	}
	for _, s := range merged {
		if s.ID == "cell-1/a1" && s.Name != "attempt" {
			t.Fatalf("duplicate span overwrote the first occurrence: %+v", s)
		}
		if s.ID == "cell-1/a1/s9" && s.Parent != "cell-1" {
			t.Fatalf("orphan not adopted by trace root: %+v", s)
		}
	}
	// Deterministic order: root first (same start, longer), then children.
	if merged[0].ID != "cell-1" {
		t.Fatalf("sort order: first span is %q, want root", merged[0].ID)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	spans := []Span{
		span("base/v0/seed7", "cell-1", "", "cell", 0, 1_000_000),
		span("base/v0/seed7", "cell-1/q1", "cell-1", "queue-wait", 0, 200_000),
		span("base/v0/seed7", "cell-1/a1", "cell-1", "attempt", 200_000, 1_000_000),
		span("base/v0/seed7", "cell-1/a1/s1", "cell-1/a1", "build", 210_000, 260_000),
		span("base/v0/seed7", "cell-1/a1/s2", "cell-1/a1", "run", 260_000, 990_000),
		span("base/v0/seed9", "cell-2", "", "cell", 0, 500_000),
	}
	spans[2].Attrs = map[string]string{"worker": "w1", "outcome": "done"}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}

	// The file must be well-formed Chrome trace JSON with complete events.
	var raw struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	var xEvents int
	for _, ev := range raw.TraceEvents {
		if ev["ph"] == "X" {
			xEvents++
		}
	}
	if xEvents != len(spans) {
		t.Fatalf("%d X events, want %d", xEvents, len(spans))
	}

	back, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadChromeTrace: %v", err)
	}
	want := Merge(spans)
	if !reflect.DeepEqual(back, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, want)
	}

	// Determinism: a permuted input must export byte-identically.
	perm := []Span{spans[4], spans[0], spans[5], spans[2], spans[1], spans[3]}
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, perm); err != nil {
		t.Fatalf("WriteChromeTrace(perm): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("export is not deterministic under input permutation")
	}
}

func TestChromeTraceLaneContainment(t *testing.T) {
	// Two overlapping siblings inside one parent must land on different
	// tids — Chrome nests same-tid X events by containment, and a partial
	// overlap on one lane renders as garbage.
	spans := []Span{
		span("t", "p", "", "attempt", 0, 100),
		span("t", "c1", "p", "run", 10, 60),
		span("t", "c2", "p", "snapshot-upload", 50, 80),
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	tid := map[string]int{}
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		tid[ev.Args["id"].(string)] = ev.TID
	}
	if tid["c1"] != tid["p"] {
		t.Errorf("contained child c1 on tid %d, parent on %d — want same lane", tid["c1"], tid["p"])
	}
	if tid["c2"] == tid["c1"] {
		t.Error("overlapping siblings share a lane; Chrome cannot nest a partial overlap")
	}
}
