// Package vmmodel defines virtual machines, flavors, and the size
// classifications used throughout the paper's evaluation (Tables 1 and 2,
// Figure 15).
//
// A flavor is a predefined template of vCPUs, memory, and storage (Sec. 2.1);
// VMs are instantiated according to flavors, ensuring standardized
// configurations across the infrastructure.
package vmmodel

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// WorkloadClass distinguishes the two workload families the paper analyzes.
type WorkloadClass int

const (
	// General covers development environments, CI/CD, Kubernetes
	// infrastructure, and SAP application servers (small/medium/large
	// categories, Sec. 5.5).
	General WorkloadClass = iota
	// HANA covers memory-intensive SAP HANA in-memory databases
	// (predominantly the extra-large RAM category, Sec. 5.5). HANA VMs
	// are explicitly bin-packed onto dedicated building blocks.
	HANA
)

// String implements fmt.Stringer.
func (w WorkloadClass) String() string {
	switch w {
	case General:
		return "general"
	case HANA:
		return "hana"
	default:
		return fmt.Sprintf("WorkloadClass(%d)", int(w))
	}
}

// Flavor is a VM template. Fields mirror the OpenStack flavor attributes
// relevant to scheduling.
type Flavor struct {
	Name       string
	VCPUs      int
	RAMGiB     int
	DiskGB     int
	Class      WorkloadClass
	RequireGPU bool
	// PinCPU requests dedicated physical cores (the CPU-pinning QoS
	// class of the paper's outlook, Sec. 8: reserving cores reduces
	// latency for performance-sensitive VMs). Pinned vCPUs are exempt
	// from overcommit and never experience contention.
	PinCPU bool
	// PaperCount is the number of instances of this flavor observed in
	// the paper's Figure 15 (0 for flavors not in the figure).
	PaperCount int
	// MeanLifetimeHours calibrates the lifetime generator to Figure 15's
	// per-flavor average lifetimes (13 h … 3.2 y, median ≈ 1 week).
	MeanLifetimeHours float64
}

// SizeClass is the paper's four-way size categorization.
type SizeClass int

const (
	Small SizeClass = iota
	Medium
	Large
	ExtraLarge
)

// String implements fmt.Stringer.
func (s SizeClass) String() string {
	switch s {
	case Small:
		return "Small"
	case Medium:
		return "Medium"
	case Large:
		return "Large"
	case ExtraLarge:
		return "Extra Large"
	default:
		return fmt.Sprintf("SizeClass(%d)", int(s))
	}
}

// SizeClasses lists all classes in ascending order.
var SizeClasses = []SizeClass{Small, Medium, Large, ExtraLarge}

// VCPUClass classifies by vCPU count per the paper's Table 1:
// Small ≤4, Medium 4<v≤16, Large 16<v≤64, Extra Large >64.
func VCPUClass(vcpus int) SizeClass {
	switch {
	case vcpus <= 4:
		return Small
	case vcpus <= 16:
		return Medium
	case vcpus <= 64:
		return Large
	default:
		return ExtraLarge
	}
}

// RAMClass classifies by memory per the paper's Table 2:
// Small ≤2 GiB, Medium 2<r≤64, Large 64<r≤128, Extra Large >128.
func RAMClass(ramGiB int) SizeClass {
	switch {
	case ramGiB <= 2:
		return Small
	case ramGiB <= 64:
		return Medium
	case ramGiB <= 128:
		return Large
	default:
		return ExtraLarge
	}
}

// VCPUClass reports the flavor's Table 1 class.
func (f *Flavor) VCPUClass() SizeClass { return VCPUClass(f.VCPUs) }

// RAMClass reports the flavor's Table 2 class.
func (f *Flavor) RAMClass() SizeClass { return RAMClass(f.RAMGiB) }

// ResizeTarget picks a different catalog flavor of the same workload class
// — users resize within their application family, HANA appliances within
// HANA sizes. It returns nil when the class has no alternative.
func ResizeTarget(current *Flavor, rng *rand.Rand) *Flavor {
	var candidates []*Flavor
	for _, f := range Catalog() {
		if f.Class == current.Class && f.Name != current.Name {
			candidates = append(candidates, f)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	return candidates[rng.IntN(len(candidates))]
}

// Catalog returns the flavor catalog reconstructed from Figure 15. vCPU and
// RAM values are chosen so that, weighted by the published per-flavor VM
// counts, the Table 1 and Table 2 class totals are reproduced:
//
//	Table 1 (vCPU): Small 28,446 · Medium 14,340 · Large 1,831 · XL 738
//	Table 2 (RAM):  Small 991 · Medium 41,395 · Large 787 · XL 2,184
//
// Mean lifetimes span 13 hours to 3.2 years with a median around one week
// (Fig. 15); extra-large (HANA) flavors skew long-lived, but lifetime is
// deliberately not monotone in size — the paper stresses that small VMs do
// not consistently live shorter.
func Catalog() []*Flavor {
	return []*Flavor{
		// Small-RAM general purpose (Table 2 Small, ≤2 GiB).
		{Name: "SA", VCPUs: 1, RAMGiB: 1, DiskGB: 20, PaperCount: 384, MeanLifetimeHours: 13},
		{Name: "SB", VCPUs: 2, RAMGiB: 2, DiskGB: 40, PaperCount: 192, MeanLifetimeHours: 48},

		// Small-vCPU / medium-RAM general purpose. MK and MN are the two
		// bulk flavors (9,984 and 11,705 VMs).
		{Name: "MB", VCPUs: 2, RAMGiB: 4, DiskGB: 40, PaperCount: 134, MeanLifetimeHours: 24},
		{Name: "MF", VCPUs: 2, RAMGiB: 8, DiskGB: 60, PaperCount: 538, MeanLifetimeHours: 72},
		{Name: "MG", VCPUs: 4, RAMGiB: 16, DiskGB: 80, PaperCount: 1117, MeanLifetimeHours: 120},
		{Name: "MH", VCPUs: 4, RAMGiB: 8, DiskGB: 60, PaperCount: 211, MeanLifetimeHours: 168},
		{Name: "MI", VCPUs: 4, RAMGiB: 32, DiskGB: 100, PaperCount: 359, MeanLifetimeHours: 336},
		{Name: "MK", VCPUs: 2, RAMGiB: 16, DiskGB: 60, PaperCount: 9984, MeanLifetimeHours: 168},
		{Name: "ML", VCPUs: 4, RAMGiB: 16, DiskGB: 80, PaperCount: 2705, MeanLifetimeHours: 240},
		{Name: "MN", VCPUs: 4, RAMGiB: 32, DiskGB: 100, PaperCount: 11705, MeanLifetimeHours: 168},

		// Medium-vCPU general purpose / application servers.
		{Name: "MA", VCPUs: 8, RAMGiB: 32, DiskGB: 120, PaperCount: 287, MeanLifetimeHours: 504},
		{Name: "MC", VCPUs: 8, RAMGiB: 64, DiskGB: 160, PaperCount: 3446, MeanLifetimeHours: 336},
		{Name: "MD", VCPUs: 8, RAMGiB: 16, DiskGB: 80, PaperCount: 155, MeanLifetimeHours: 48},
		{Name: "ME", VCPUs: 8, RAMGiB: 32, DiskGB: 120, PaperCount: 956, MeanLifetimeHours: 720},
		{Name: "MJ", VCPUs: 16, RAMGiB: 64, DiskGB: 200, PaperCount: 3432, MeanLifetimeHours: 504},
		{Name: "MM", VCPUs: 12, RAMGiB: 48, DiskGB: 160, PaperCount: 2705, MeanLifetimeHours: 336},
		{Name: "MO", VCPUs: 16, RAMGiB: 32, DiskGB: 120, PaperCount: 3315, MeanLifetimeHours: 168},
		{Name: "MP", VCPUs: 16, RAMGiB: 64, DiskGB: 200, PaperCount: 379, MeanLifetimeHours: 1440},
		{Name: "MQ", VCPUs: 8, RAMGiB: 64, DiskGB: 160, PaperCount: 41, MeanLifetimeHours: 2160},
		{Name: "MR", VCPUs: 12, RAMGiB: 24, DiskGB: 100, PaperCount: 259, MeanLifetimeHours: 96},

		// Large-RAM application servers (Table 2 Large, 64<r≤128 GiB).
		{Name: "LA", VCPUs: 24, RAMGiB: 128, DiskGB: 300, PaperCount: 173, MeanLifetimeHours: 720},
		{Name: "LB", VCPUs: 8, RAMGiB: 128, DiskGB: 300, PaperCount: 583, MeanLifetimeHours: 504},
		{Name: "LC", VCPUs: 32, RAMGiB: 128, DiskGB: 300, PaperCount: 38, MeanLifetimeHours: 1440},

		// Extra-large-RAM HANA in-memory database flavors (Table 2 XL,
		// >128 GiB). Large-vCPU subset (Table 1 Large, 16<v≤64).
		{Name: "XLA", VCPUs: 32, RAMGiB: 256, DiskGB: 768, Class: HANA, PaperCount: 38, MeanLifetimeHours: 5040},
		{Name: "XLB", VCPUs: 24, RAMGiB: 192, DiskGB: 576, Class: HANA, PaperCount: 58, MeanLifetimeHours: 2160},
		{Name: "XLC", VCPUs: 48, RAMGiB: 1024, DiskGB: 3072, Class: HANA, PaperCount: 53, MeanLifetimeHours: 8760},
		{Name: "XLF", VCPUs: 24, RAMGiB: 256, DiskGB: 768, Class: HANA, PaperCount: 40, MeanLifetimeHours: 2880},
		{Name: "XLG", VCPUs: 32, RAMGiB: 384, DiskGB: 1152, Class: HANA, PaperCount: 219, MeanLifetimeHours: 4320},
		{Name: "XLH", VCPUs: 32, RAMGiB: 256, DiskGB: 768, Class: HANA, PaperCount: 215, MeanLifetimeHours: 1440},
		{Name: "XLI", VCPUs: 48, RAMGiB: 512, DiskGB: 1536, Class: HANA, PaperCount: 104, MeanLifetimeHours: 5040},
		{Name: "XLK", VCPUs: 24, RAMGiB: 192, DiskGB: 576, Class: HANA, PaperCount: 96, MeanLifetimeHours: 720},
		{Name: "XLN", VCPUs: 32, RAMGiB: 384, DiskGB: 1152, Class: HANA, PaperCount: 218, MeanLifetimeHours: 8760},
		{Name: "XLP", VCPUs: 40, RAMGiB: 256, DiskGB: 768, Class: HANA, PaperCount: 251, MeanLifetimeHours: 4320},
		{Name: "XLQ", VCPUs: 48, RAMGiB: 512, DiskGB: 1536, Class: HANA, PaperCount: 192, MeanLifetimeHours: 12960},
		{Name: "XLR", VCPUs: 64, RAMGiB: 768, DiskGB: 2304, Class: HANA, PaperCount: 114, MeanLifetimeHours: 8760},

		// Extra-large-vCPU HANA flavors (Table 1 XL, >64 vCPUs). XLL at
		// 12 TiB realizes the paper's "up to 12 TB per VM".
		{Name: "XLD", VCPUs: 72, RAMGiB: 1536, DiskGB: 4608, Class: HANA, PaperCount: 127, MeanLifetimeHours: 8760},
		{Name: "XLE", VCPUs: 80, RAMGiB: 1024, DiskGB: 3072, Class: HANA, PaperCount: 60, MeanLifetimeHours: 4320},
		{Name: "XLJ", VCPUs: 80, RAMGiB: 2048, DiskGB: 6144, Class: HANA, PaperCount: 142, MeanLifetimeHours: 12960},
		{Name: "XLL", VCPUs: 96, RAMGiB: 12288, DiskGB: 24576, Class: HANA, PaperCount: 89, MeanLifetimeHours: 25920},
		{Name: "XLM", VCPUs: 80, RAMGiB: 1536, DiskGB: 4608, Class: HANA, PaperCount: 42, MeanLifetimeHours: 17280},
		{Name: "XLO", VCPUs: 96, RAMGiB: 6144, DiskGB: 18432, Class: HANA, PaperCount: 259, MeanLifetimeHours: 25920},
	}
}

// CatalogByName indexes the catalog.
func CatalogByName() map[string]*Flavor {
	m := make(map[string]*Flavor)
	for _, f := range Catalog() {
		m[f.Name] = f
	}
	return m
}

// TotalPaperVMs sums Figure 15 per-flavor counts.
func TotalPaperVMs() int {
	total := 0
	for _, f := range Catalog() {
		total += f.PaperCount
	}
	return total
}

// ClassCounts tallies the catalog's Figure 15 instance counts by the given
// classifier, reproducing Table 1 (classify by VCPUClass) or Table 2
// (classify by RAMClass).
func ClassCounts(classify func(*Flavor) SizeClass) map[SizeClass]int {
	counts := make(map[SizeClass]int)
	for _, f := range Catalog() {
		counts[classify(f)] += f.PaperCount
	}
	return counts
}

// SortedByPaperCount returns catalog flavors ordered by ascending paper
// count, then name — the ordering used for Figure 15 bar annotations.
func SortedByPaperCount() []*Flavor {
	fs := Catalog()
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].PaperCount != fs[j].PaperCount {
			return fs[i].PaperCount < fs[j].PaperCount
		}
		return fs[i].Name < fs[j].Name
	})
	return fs
}
