package vmmodel

import (
	"fmt"

	"sapsim/internal/sim"
	"sapsim/internal/topology"
)

// ID uniquely identifies a VM within a region.
type ID string

// State is a VM lifecycle state. Transitions follow the scheduling-relevant
// events the dataset records: creation, migration, resize, deletion (Sec. 4).
type State int

const (
	// Requested: creation submitted via the Nova API, not yet placed.
	Requested State = iota
	// Active: running on a node.
	Active
	// Migrating: being moved between nodes (by DRS or a rebalancer).
	Migrating
	// Deleted: terminated; resources released.
	Deleted
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Requested:
		return "requested"
	case Active:
		return "active"
	case Migrating:
		return "migrating"
	case Deleted:
		return "deleted"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// UsageProfile yields instantaneous resource demand for a VM at a given
// simulation time. Implementations live in internal/workload; keeping the
// interface here avoids a dependency cycle.
type UsageProfile interface {
	// CPUUsage returns the fraction (0..1+) of the VM's *requested* vCPU
	// capacity demanded at time t. Values above 1 model bursts beyond
	// the allocation that manifest as contention on an overcommitted
	// host.
	CPUUsage(t sim.Time) float64
	// MemUsage returns the fraction (0..1) of requested memory in use.
	MemUsage(t sim.Time) float64
	// NetTxKbps and NetRxKbps return instantaneous NIC traffic.
	NetTxKbps(t sim.Time) float64
	NetRxKbps(t sim.Time) float64
	// DiskUsage returns the fraction (0..1) of requested disk in use.
	DiskUsage(t sim.Time) float64
}

// VM is a virtual machine instance.
type VM struct {
	ID      ID
	Flavor  *Flavor
	Project string // tenant; hashed in the released dataset
	State   State

	// Placement.
	Node *topology.Node // nil until placed
	BB   *topology.BuildingBlock

	// Lifecycle timestamps (simulation time).
	CreatedAt sim.Time
	PlacedAt  sim.Time
	DeletedAt sim.Time // meaningful once State == Deleted

	// Profile drives telemetry generation.
	Profile UsageProfile

	// Migrations counts completed live migrations, a planned future
	// metric in the paper's outlook (Sec. 8).
	Migrations int
}

// Lifetime reports the VM's lifetime: DeletedAt-CreatedAt for deleted VMs,
// or now-CreatedAt for live ones (the paper's retrospective lifetime
// collection measures age at observation for still-running VMs).
func (v *VM) Lifetime(now sim.Time) sim.Time {
	if v.State == Deleted {
		return v.DeletedAt - v.CreatedAt
	}
	return now - v.CreatedAt
}

// RequestedCPUCores reports the vCPU allocation.
func (v *VM) RequestedCPUCores() int { return v.Flavor.VCPUs }

// RequestedMemoryMB reports the memory allocation in MiB.
func (v *VM) RequestedMemoryMB() int64 { return int64(v.Flavor.RAMGiB) << 10 }

// RequestedDiskGB reports the disk allocation in GiB.
func (v *VM) RequestedDiskGB() int64 { return int64(v.Flavor.DiskGB) }

// Place records a placement decision onto a node.
func (v *VM) Place(n *topology.Node, at sim.Time) {
	v.Node = n
	v.BB = n.BB
	v.State = Active
	v.PlacedAt = at
}

// MigrateTo moves the VM to another node, incrementing the migration count.
func (v *VM) MigrateTo(n *topology.Node, at sim.Time) {
	v.Node = n
	v.BB = n.BB
	v.Migrations++
	v.State = Active
}

// Delete marks the VM terminated at the given time.
func (v *VM) Delete(at sim.Time) {
	v.State = Deleted
	v.DeletedAt = at
	v.Node = nil
	v.BB = nil
}
