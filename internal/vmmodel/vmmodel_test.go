package vmmodel

import (
	"testing"
	"testing/quick"

	"sapsim/internal/sim"
	"sapsim/internal/topology"
)

func TestVCPUClassBoundaries(t *testing.T) {
	cases := []struct {
		vcpus int
		want  SizeClass
	}{
		{1, Small}, {4, Small}, {5, Medium}, {16, Medium},
		{17, Large}, {64, Large}, {65, ExtraLarge}, {128, ExtraLarge},
	}
	for _, c := range cases {
		if got := VCPUClass(c.vcpus); got != c.want {
			t.Errorf("VCPUClass(%d) = %v, want %v", c.vcpus, got, c.want)
		}
	}
}

func TestRAMClassBoundaries(t *testing.T) {
	cases := []struct {
		ram  int
		want SizeClass
	}{
		{1, Small}, {2, Small}, {3, Medium}, {64, Medium},
		{65, Large}, {128, Large}, {129, ExtraLarge}, {12288, ExtraLarge},
	}
	for _, c := range cases {
		if got := RAMClass(c.ram); got != c.want {
			t.Errorf("RAMClass(%d) = %v, want %v", c.ram, got, c.want)
		}
	}
}

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) != 41 {
		t.Errorf("catalog has %d flavors, want 41 (Fig. 15)", len(cat))
	}
	seen := map[string]bool{}
	for _, f := range cat {
		if seen[f.Name] {
			t.Errorf("duplicate flavor %s", f.Name)
		}
		seen[f.Name] = true
		if f.VCPUs <= 0 || f.RAMGiB <= 0 || f.DiskGB <= 0 {
			t.Errorf("flavor %s has non-positive resources: %+v", f.Name, f)
		}
		if f.PaperCount < 30 {
			t.Errorf("flavor %s has count %d; Fig. 15 only includes flavors with ≥30 instances", f.Name, f.PaperCount)
		}
		if f.MeanLifetimeHours < 13 || f.MeanLifetimeHours > 3.3*365*24 {
			t.Errorf("flavor %s lifetime %vh outside Fig. 15 range 13h..3.2y", f.Name, f.MeanLifetimeHours)
		}
	}
}

func TestCatalogTotalNearPaper(t *testing.T) {
	total := TotalPaperVMs()
	// Figure 15 covers 45,415 of the ~48,000 VMs (flavors ≥30 instances).
	if total < 45000 || total > 46000 {
		t.Errorf("catalog total = %d, want ≈45,400", total)
	}
}

// Table 1 fidelity: classify catalog counts by vCPU class and compare the
// shares against the paper's 28,446 / 14,340 / 1,831 / 738 (relative
// tolerance accounts for the <30-instance flavors excluded from Fig. 15).
func TestTable1VCPUDistribution(t *testing.T) {
	counts := ClassCounts(func(f *Flavor) SizeClass { return f.VCPUClass() })
	paper := map[SizeClass]int{Small: 28446, Medium: 14340, Large: 1831, ExtraLarge: 738}
	for _, class := range SizeClasses {
		got, want := counts[class], paper[class]
		if relDiff(got, want) > 0.25 {
			t.Errorf("Table 1 %v: catalog %d vs paper %d (rel diff %.2f)",
				class, got, want, relDiff(got, want))
		}
	}
	if !(counts[Small] > counts[Medium] && counts[Medium] > counts[Large] && counts[Large] > counts[ExtraLarge]) {
		t.Errorf("Table 1 ordering violated: %v", counts)
	}
}

// Table 2 fidelity: 991 / 41,395 / 787 / 2,184.
func TestTable2RAMDistribution(t *testing.T) {
	counts := ClassCounts(func(f *Flavor) SizeClass { return f.RAMClass() })
	paper := map[SizeClass]int{Small: 991, Medium: 41395, Large: 787, ExtraLarge: 2184}
	for _, class := range SizeClasses {
		got, want := counts[class], paper[class]
		if relDiff(got, want) > 0.45 {
			t.Errorf("Table 2 %v: catalog %d vs paper %d (rel diff %.2f)",
				class, got, want, relDiff(got, want))
		}
	}
	// Structural facts the paper stresses: medium RAM dominates, and the
	// XL RAM population exceeds the Large RAM one (HANA skew).
	if counts[Medium] < 10*counts[ExtraLarge] {
		t.Errorf("medium RAM should dominate: %v", counts)
	}
	if counts[ExtraLarge] <= counts[Large] {
		t.Errorf("XL RAM population should exceed Large (HANA skew): %v", counts)
	}
}

func TestHANAFlavorsAreXLRAM(t *testing.T) {
	for _, f := range Catalog() {
		if f.Class == HANA && f.RAMClass() != ExtraLarge {
			t.Errorf("HANA flavor %s has RAM class %v, want Extra Large", f.Name, f.RAMClass())
		}
		if f.Class == General && f.RAMGiB > 128 {
			t.Errorf("general flavor %s has %d GiB RAM; >128 GiB should be HANA", f.Name, f.RAMGiB)
		}
	}
}

func TestMaxMemoryMatchesPaper(t *testing.T) {
	max := 0
	for _, f := range Catalog() {
		if f.RAMGiB > max {
			max = f.RAMGiB
		}
	}
	if max != 12288 {
		t.Errorf("max flavor memory = %d GiB, want 12288 (12 TB, Table 3)", max)
	}
}

func TestCatalogByName(t *testing.T) {
	m := CatalogByName()
	f, ok := m["MN"]
	if !ok {
		t.Fatal("MN missing from catalog map")
	}
	if f.PaperCount != 11705 {
		t.Errorf("MN count = %d, want 11705", f.PaperCount)
	}
}

func TestSortedByPaperCount(t *testing.T) {
	fs := SortedByPaperCount()
	for i := 1; i < len(fs); i++ {
		if fs[i-1].PaperCount > fs[i].PaperCount {
			t.Fatalf("not sorted at %d: %d > %d", i, fs[i-1].PaperCount, fs[i].PaperCount)
		}
	}
}

func TestVMLifecycle(t *testing.T) {
	cat := CatalogByName()
	vm := &VM{ID: "vm-1", Flavor: cat["MK"], Project: "p1", CreatedAt: sim.Hour}
	if vm.State != Requested {
		t.Errorf("initial state = %v, want requested", vm.State)
	}
	node := testNode(t)
	vm.Place(node, 2*sim.Hour)
	if vm.State != Active || vm.Node != node || vm.BB != node.BB {
		t.Errorf("after Place: state=%v node=%v", vm.State, vm.Node)
	}
	if vm.PlacedAt != 2*sim.Hour {
		t.Errorf("PlacedAt = %v", vm.PlacedAt)
	}
	if got := vm.Lifetime(10 * sim.Hour); got != 9*sim.Hour {
		t.Errorf("live lifetime = %v, want 9h", got)
	}
	vm.Delete(20 * sim.Hour)
	if vm.State != Deleted || vm.Node != nil {
		t.Errorf("after Delete: state=%v node=%v", vm.State, vm.Node)
	}
	if got := vm.Lifetime(100 * sim.Hour); got != 19*sim.Hour {
		t.Errorf("deleted lifetime = %v, want 19h", got)
	}
}

func TestVMMigration(t *testing.T) {
	cat := CatalogByName()
	vm := &VM{ID: "vm-2", Flavor: cat["XLO"]}
	n1 := testNode(t)
	vm.Place(n1, 0)
	n2 := n1.BB.Nodes[1]
	vm.MigrateTo(n2, sim.Hour)
	if vm.Node != n2 {
		t.Error("migration did not move the VM")
	}
	if vm.Migrations != 1 {
		t.Errorf("migrations = %d, want 1", vm.Migrations)
	}
}

func TestRequestedResources(t *testing.T) {
	cat := CatalogByName()
	vm := &VM{Flavor: cat["XLL"]}
	if got := vm.RequestedCPUCores(); got != 96 {
		t.Errorf("cores = %d, want 96", got)
	}
	if got := vm.RequestedMemoryMB(); got != 12288<<10 {
		t.Errorf("memory = %d MiB, want %d", got, 12288<<10)
	}
	if got := vm.RequestedDiskGB(); got != 24576 {
		t.Errorf("disk = %d, want 24576 (HANA sizing: ~3x RAM, capped)", got)
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{Requested: "requested", Active: "active", Migrating: "migrating", Deleted: "deleted", State(9): "State(9)"}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, w)
		}
	}
	if HANA.String() != "hana" || General.String() != "general" {
		t.Error("WorkloadClass strings wrong")
	}
	if WorkloadClass(7).String() != "WorkloadClass(7)" {
		t.Error("unknown WorkloadClass string wrong")
	}
	for _, c := range SizeClasses {
		if c.String() == "" {
			t.Errorf("empty size class string for %d", int(c))
		}
	}
	if SizeClass(9).String() != "SizeClass(9)" {
		t.Error("unknown SizeClass string wrong")
	}
}

// Property: classification functions are monotone in their argument.
func TestPropertyClassesMonotone(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := int(a)+1, int(b)+1
		if x > y {
			x, y = y, x
		}
		return VCPUClass(x) <= VCPUClass(y) && RAMClass(x) <= RAMClass(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func testNode(t *testing.T) *topology.Node {
	t.Helper()
	r := topology.NewRegion("t")
	dc := r.AddAZ("a").AddDC("d")
	cap := topology.Capacity{PCPUCores: 128, MemoryMB: 16 << 20, StorageGB: 32 << 10, NetworkGbps: 200}
	bb, err := dc.AddBB("bb", topology.HANA, 2, cap)
	if err != nil {
		t.Fatal(err)
	}
	return bb.Nodes[0]
}

func relDiff(got, want int) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	d := float64(got-want) / float64(want)
	if d < 0 {
		d = -d
	}
	return d
}
