package workload

import (
	"testing"

	"sapsim/internal/sim"
)

// BenchmarkGenerate measures full workload synthesis at the default
// laptop-scale population.
func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewGenerator(DefaultSpec(2400, uint64(i))).Generate()
	}
}

// BenchmarkProfileCPUUsage measures the per-sample demand evaluation — the
// innermost loop of host snapshots.
func BenchmarkProfileCPUUsage(b *testing.B) {
	p := &Profile{
		Seed: 1, MeanCPU: 0.3, DiurnalAmp: 0.2, WeekendDip: 0.2,
		NoiseAmp: 0.1, BurstProb: 0.01, BurstMag: 2,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.CPUUsage(sim.Time(i) * sim.Minute)
	}
}
