// Package workload generates synthetic enterprise workloads calibrated to
// the published marginals of the SAP Cloud Infrastructure dataset:
//
//   - VM CPU-usage ratios matching Figure 14a's CDF (more than 80% of VMs
//     average below the 70% under-utilization threshold);
//   - VM memory-usage ratios matching Figure 14b (≈38% under-utilized, ≈10%
//     optimal, ≈52% above the 85% threshold);
//   - per-flavor lifetimes spanning minutes to years with a median around
//     one week (Figure 15);
//   - light network traffic (Figures 11/12: ≥99.7% free bandwidth on
//     200 Gbps NICs) and light storage usage (Figure 13);
//   - diurnal weekday/weekend modulation (visible in Figure 8's ready-time
//     series).
//
// All draws are deterministic given the generator seed.
package workload

import (
	"math"
	"math/rand/v2"
)

// splitmix64 is a fast avalanche hash used for stateless per-time-bucket
// noise: the same (seed, bucket) pair always yields the same value, so a
// profile can be queried at arbitrary times without storing a series.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashUnit maps (seed, bucket) to a uniform float in [0, 1).
func hashUnit(seed, bucket uint64) float64 {
	return float64(splitmix64(seed^splitmix64(bucket))>>11) / (1 << 53)
}

// hashNormal maps (seed, bucket) to an approximately standard normal value
// using the sum of three uniforms (Irwin–Hall), cheap and smooth enough for
// telemetry noise.
func hashNormal(seed, bucket uint64) float64 {
	u := hashUnit(seed, bucket) + hashUnit(seed+1, bucket) + hashUnit(seed+2, bucket)
	return (u - 1.5) * 2.0 // variance ≈ 1
}

// logNormal draws a log-normal value with the given median and shape sigma.
func logNormal(rng *rand.Rand, median, sigma float64) float64 {
	return median * math.Exp(sigma*rng.NormFloat64())
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// drawMeanCPU samples a VM's average CPU usage ratio. Mixture calibrated to
// Figure 14a: the bulk of VMs are heavily over-provisioned (low usage), a
// thin band is optimal (70–85%), and a small tail is over-utilized.
func drawMeanCPU(rng *rand.Rand) float64 {
	switch u := rng.Float64(); {
	case u < 0.83: // under-utilized bulk
		// Log-normal centered low, truncated below the 70% threshold.
		return clamp(logNormal(rng, 0.18, 0.8), 0.01, 0.699)
	case u < 0.93: // optimal band
		return 0.70 + rng.Float64()*0.15
	default: // over-utilized tail
		return 0.85 + rng.Float64()*0.13
	}
}

// drawMeanMem samples a VM's average memory usage ratio. Mixture calibrated
// to Figure 14b: memory is much better aligned with requests than CPU.
// HANA VMs pin large in-memory tables and sit high by construction.
func drawMeanMem(rng *rand.Rand, hana bool) float64 {
	if hana {
		return 0.86 + rng.Float64()*0.12
	}
	switch u := rng.Float64(); {
	case u < 0.40: // under-utilized
		return clamp(0.15+rng.Float64()*0.55, 0.0, 0.699)
	case u < 0.50: // optimal band
		return 0.70 + rng.Float64()*0.15
	default: // high consumption (page cache, in-memory apps)
		return 0.85 + rng.Float64()*0.14
	}
}
