package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"sapsim/internal/sim"
	"sapsim/internal/vmmodel"
)

// Spec configures workload generation.
type Spec struct {
	// Seed makes the generated population fully deterministic.
	Seed uint64
	// TargetVMs is the initial population size at the observation epoch.
	// The paper's region holds ≈48,000 VMs; examples and tests use
	// down-scaled populations.
	TargetVMs int
	// Horizon is the observation window during which churn (arrivals and
	// deletions) is generated; the paper observes 30 days.
	Horizon sim.Time
	// LifetimeSigma is the log-normal shape of per-flavor lifetimes.
	// 1.2 spreads each flavor's lifetimes over roughly two orders of
	// magnitude, reproducing Fig. 15's within-flavor variation.
	LifetimeSigma float64
	// Projects is the number of tenants VMs are spread over.
	Projects int
	// Phases optionally modulate the churn arrival process (surges,
	// lulls, flavor-mix shifts). Empty keeps the homogeneous Poisson
	// process — and the exact RNG draw sequence — of the base workload.
	Phases []Phase
}

// DefaultSpec returns a spec for the given population size over 30 days.
func DefaultSpec(targetVMs int, seed uint64) Spec {
	return Spec{
		Seed:          seed,
		TargetVMs:     targetVMs,
		Horizon:       30 * sim.Day,
		LifetimeSigma: 1.2,
		Projects:      40,
	}
}

// Instance pairs a VM with its planned timeline. ArriveAt <= 0 marks VMs
// already running at the epoch (with age -ArriveAt); positive ArriveAt marks
// churn during the observation window.
type Instance struct {
	VM       *vmmodel.VM
	ArriveAt sim.Time
	Lifetime sim.Time // total planned lifetime from creation
}

// DeleteAt returns the planned deletion time relative to the epoch.
func (in *Instance) DeleteAt() sim.Time { return in.ArriveAt + in.Lifetime }

// Generator produces deterministic workloads.
type Generator struct {
	spec    Spec
	rng     *rand.Rand
	catalog []*vmmodel.Flavor
	nextID  int
}

// NewGenerator builds a generator over the paper's flavor catalog.
func NewGenerator(spec Spec) *Generator {
	if spec.LifetimeSigma <= 0 {
		spec.LifetimeSigma = 1.2
	}
	if spec.Projects <= 0 {
		spec.Projects = 40
	}
	return &Generator{
		spec:    spec,
		rng:     rand.New(rand.NewPCG(spec.Seed, 0x5a9c10ad)),
		catalog: vmmodel.Catalog(),
	}
}

// Generate returns the full workload: the initial population (stationary
// state at the epoch) plus Poisson churn over the horizon, sorted by
// arrival time.
func (g *Generator) Generate() []*Instance {
	instances := g.initialPopulation()
	instances = append(instances, g.churn()...)
	sort.Slice(instances, func(i, j int) bool {
		if instances[i].ArriveAt != instances[j].ArriveAt {
			return instances[i].ArriveAt < instances[j].ArriveAt
		}
		return instances[i].VM.ID < instances[j].VM.ID
	})
	return instances
}

// flavorQuota scales Fig. 15 per-flavor counts down to TargetVMs, keeping
// at least one VM for every flavor so the full catalog is exercised.
func (g *Generator) flavorQuota() map[*vmmodel.Flavor]int {
	total := vmmodel.TotalPaperVMs()
	quota := make(map[*vmmodel.Flavor]int, len(g.catalog))
	for _, f := range g.catalog {
		n := int(math.Round(float64(f.PaperCount) / float64(total) * float64(g.spec.TargetVMs)))
		if n < 1 {
			n = 1
		}
		quota[f] = n
	}
	return quota
}

func (g *Generator) initialPopulation() []*Instance {
	var out []*Instance
	quota := g.flavorQuota()
	for _, f := range g.catalog { // catalog order keeps generation deterministic
		for i := 0; i < quota[f]; i++ {
			life := g.Lifetime(f)
			// Stationary age: uniform over the planned lifetime, so the
			// population at the epoch contains both young and old VMs.
			age := sim.Time(g.rng.Float64() * float64(life))
			out = append(out, g.newInstance(f, -age, life))
		}
	}
	return out
}

// churn draws Poisson arrivals per flavor at rate quota/meanLifetime, which
// keeps the population approximately stationary across the window. With
// arrival phases configured the process becomes non-homogeneous and is
// sampled by thinning: candidates are drawn at the envelope rate and
// accepted with probability factor(t)/envelope.
func (g *Generator) churn() []*Instance {
	var out []*Instance
	quota := g.flavorQuota()
	for _, f := range g.catalog {
		mean := sim.Time(f.MeanLifetimeHours * float64(sim.Hour))
		rate := float64(quota[f]) / float64(mean) // arrivals per sim.Time unit
		if len(g.spec.Phases) == 0 {
			t := sim.Time(0)
			for {
				// Exponential inter-arrival.
				gap := sim.Time(-math.Log(1-g.rng.Float64()) / rate)
				t += gap
				if t >= g.spec.Horizon {
					break
				}
				out = append(out, g.newInstance(f, t, g.Lifetime(f)))
			}
			continue
		}
		envelope := phaseEnvelope(g.spec.Phases, f.Class)
		t := sim.Time(0)
		for {
			gap := sim.Time(-math.Log(1-g.rng.Float64()) / (rate * envelope))
			t += gap
			if t >= g.spec.Horizon {
				break
			}
			if g.rng.Float64()*envelope >= phaseFactor(g.spec.Phases, f.Class, t) {
				continue // thinned: outside (or below) the phase intensity
			}
			out = append(out, g.newInstance(f, t, g.Lifetime(f)))
		}
	}
	return out
}

func (g *Generator) newInstance(f *vmmodel.Flavor, arrive sim.Time, life sim.Time) *Instance {
	g.nextID++
	vm := &vmmodel.VM{
		ID:        vmmodel.ID(fmt.Sprintf("vm-%06d", g.nextID)),
		Flavor:    f,
		Project:   fmt.Sprintf("proj-%02d", g.rng.IntN(g.spec.Projects)),
		CreatedAt: arrive,
	}
	vm.Profile = g.newProfile(f)
	return &Instance{VM: vm, ArriveAt: arrive, Lifetime: life}
}

// Lifetime draws a log-normal lifetime for the flavor, with the flavor's
// Fig. 15 mean as the distribution median. A floor of five minutes matches
// the shortest observed lifetimes ("few minutes", Sec. 5.5).
func (g *Generator) Lifetime(f *vmmodel.Flavor) sim.Time {
	h := logNormal(g.rng, f.MeanLifetimeHours, g.spec.LifetimeSigma)
	d := sim.Time(h * float64(sim.Hour))
	if d < 5*sim.Minute {
		d = 5 * sim.Minute
	}
	return d
}

// newProfile draws the calibrated usage profile for a VM of the flavor.
func (g *Generator) newProfile(f *vmmodel.Flavor) *Profile {
	hana := f.Class == vmmodel.HANA
	p := &Profile{
		Seed:       g.rng.Uint64(),
		MeanCPU:    drawMeanCPU(g.rng),
		MeanMem:    drawMeanMem(g.rng, hana),
		DiurnalAmp: 0.10 + g.rng.Float64()*0.30,
		WeekendDip: 0.05 + g.rng.Float64()*0.30,
		PhaseHours: g.rng.Float64() * 6,
		NoiseAmp:   0.05 + g.rng.Float64()*0.20,
		BurstMag:   1.5 + g.rng.Float64()*1.5,
		DiskFrac:   0.10 + g.rng.Float64()*0.70,
	}
	// A minority of VMs are "noisy neighbors" with frequent bursts
	// (Sec. 3.2); the rest burst rarely.
	if g.rng.Float64() < 0.10 {
		p.BurstProb = 0.05 + g.rng.Float64()*0.10
	} else {
		p.BurstProb = g.rng.Float64() * 0.01
	}
	// Slow memory growth on a subset of VMs (visible in Fig. 10).
	if g.rng.Float64() < 0.15 {
		p.MemGrowthPerDay = g.rng.Float64() * 0.004
	}
	// Network: log-normal around a few Mbit/s; HANA replication is
	// heavier but still negligible next to a 200 Gbps NIC.
	median := 2000.0 // Kbit/s
	if hana {
		median = 20000
	}
	p.TxKbps = logNormal(g.rng, median, 1.0)
	p.RxKbps = logNormal(g.rng, median*1.4, 1.0)
	return p
}
