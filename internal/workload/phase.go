package workload

import (
	"sapsim/internal/sim"
	"sapsim/internal/vmmodel"
)

// Phase modulates the churn arrival process over a window [From, To):
// demand surges, lulls, and flavor-mix shifts. Phases compose
// multiplicatively when they overlap.
type Phase struct {
	From, To sim.Time
	// RateMultiplier scales the Poisson arrival intensity inside the
	// window: 1 leaves it unchanged, 3 models a surge, 0.25 a lull, 0
	// suppresses arrivals entirely.
	RateMultiplier float64
	// ClassMultiplier applies an extra per-workload-class factor on top
	// of RateMultiplier, shifting the flavor mix of arrivals (e.g. a
	// HANA-heavy onboarding wave). Absent classes default to 1.
	ClassMultiplier map[vmmodel.WorkloadClass]float64
}

// factor reports the phase's intensity multiplier for the class at time t
// (1 outside the window).
func (p Phase) factor(class vmmodel.WorkloadClass, t sim.Time) float64 {
	if t < p.From || t >= p.To {
		return 1
	}
	m := p.RateMultiplier
	if c, ok := p.ClassMultiplier[class]; ok {
		m *= c
	}
	return m
}

// peak reports the largest multiplier the phase can contribute for the
// class (at least 1, since the phase contributes 1 outside its window).
func (p Phase) peak(class vmmodel.WorkloadClass) float64 {
	m := p.RateMultiplier
	if c, ok := p.ClassMultiplier[class]; ok {
		m *= c
	}
	if m < 1 {
		return 1
	}
	return m
}

// phaseFactor is the combined arrival-intensity multiplier for the class at
// time t across all phases.
func phaseFactor(phases []Phase, class vmmodel.WorkloadClass, t sim.Time) float64 {
	m := 1.0
	for _, p := range phases {
		m *= p.factor(class, t)
	}
	return m
}

// phaseEnvelope is an upper bound on phaseFactor over all t, used as the
// thinning envelope for non-homogeneous Poisson sampling.
func phaseEnvelope(phases []Phase, class vmmodel.WorkloadClass) float64 {
	m := 1.0
	for _, p := range phases {
		m *= p.peak(class)
	}
	return m
}
