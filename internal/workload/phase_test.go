package workload

import (
	"reflect"
	"testing"

	"sapsim/internal/sim"
	"sapsim/internal/vmmodel"
)

func countArrivals(instances []*Instance, from, to sim.Time) int {
	n := 0
	for _, in := range instances {
		if in.ArriveAt >= from && in.ArriveAt < to {
			n++
		}
	}
	return n
}

func TestNoPhasesMatchesLegacyGeneration(t *testing.T) {
	spec := DefaultSpec(400, 99)
	plain := NewGenerator(spec).Generate()
	spec.Phases = []Phase{} // empty, not nil: still the legacy path
	empty := NewGenerator(spec).Generate()
	if !reflect.DeepEqual(instanceKeys(plain), instanceKeys(empty)) {
		t.Fatal("empty phase slice changed the generated workload")
	}
}

// instanceKeys projects instances onto comparable identity tuples.
func instanceKeys(ins []*Instance) [][3]int64 {
	out := make([][3]int64, len(ins))
	for i, in := range ins {
		out[i] = [3]int64{int64(in.ArriveAt), int64(in.Lifetime), int64(len(in.VM.ID))}
	}
	return out
}

func TestSurgePhaseRaisesWindowArrivals(t *testing.T) {
	spec := DefaultSpec(400, 99)
	base := NewGenerator(spec).Generate()

	spec.Phases = []Phase{{From: 5 * sim.Day, To: 10 * sim.Day, RateMultiplier: 5}}
	surged := NewGenerator(spec).Generate()

	baseIn := countArrivals(base, 5*sim.Day, 10*sim.Day)
	surgedIn := countArrivals(surged, 5*sim.Day, 10*sim.Day)
	if surgedIn < 2*baseIn {
		t.Fatalf("5x surge produced %d arrivals in window vs %d baseline; expected a clear increase",
			surgedIn, baseIn)
	}
}

func TestZeroMultiplierSuppressesArrivals(t *testing.T) {
	spec := DefaultSpec(400, 99)
	spec.Phases = []Phase{{From: 0, To: spec.Horizon, RateMultiplier: 0}}
	out := NewGenerator(spec).Generate()
	if n := countArrivals(out, sim.Time(1), spec.Horizon); n != 0 {
		t.Fatalf("full-suppression phase still produced %d churn arrivals", n)
	}
}

func TestClassMultiplierShiftsOnlyThatClass(t *testing.T) {
	spec := DefaultSpec(400, 99)
	spec.Phases = []Phase{{
		From: 0, To: spec.Horizon, RateMultiplier: 1,
		ClassMultiplier: map[vmmodel.WorkloadClass]float64{vmmodel.General: 0},
	}}
	out := NewGenerator(spec).Generate()
	for _, in := range out {
		if in.ArriveAt > 0 && in.VM.Flavor.Class == vmmodel.General {
			t.Fatalf("general-purpose arrival %s during full general suppression", in.VM.ID)
		}
	}
}

func TestPhaseDeterminism(t *testing.T) {
	spec := DefaultSpec(300, 42)
	spec.Phases = []Phase{{From: sim.Day, To: 3 * sim.Day, RateMultiplier: 3}}
	a := NewGenerator(spec).Generate()
	b := NewGenerator(spec).Generate()
	if !reflect.DeepEqual(instanceKeys(a), instanceKeys(b)) {
		t.Fatal("phased generation is not deterministic per seed")
	}
}

func TestPhaseFactorComposition(t *testing.T) {
	phases := []Phase{
		{From: 0, To: 10, RateMultiplier: 2},
		{From: 5, To: 15, RateMultiplier: 3},
	}
	if got := phaseFactor(phases, vmmodel.General, 7); got != 6 {
		t.Fatalf("overlapping phases: factor = %v, want 6", got)
	}
	if got := phaseFactor(phases, vmmodel.General, 12); got != 3 {
		t.Fatalf("single phase: factor = %v, want 3", got)
	}
	if got := phaseFactor(phases, vmmodel.General, 20); got != 1 {
		t.Fatalf("outside phases: factor = %v, want 1", got)
	}
	if env := phaseEnvelope(phases, vmmodel.General); env != 6 {
		t.Fatalf("envelope = %v, want 6", env)
	}
	// A lull never lifts the envelope below 1.
	lull := []Phase{{From: 0, To: 10, RateMultiplier: 0.1}}
	if env := phaseEnvelope(lull, vmmodel.General); env != 1 {
		t.Fatalf("lull envelope = %v, want 1", env)
	}
}
