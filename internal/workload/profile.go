package workload

import (
	"math"

	"sapsim/internal/sim"
)

// Profile is a deterministic, stateless usage profile for one VM. It
// implements vmmodel.UsageProfile. Instantaneous demand is derived from the
// VM's drawn mean plus diurnal, weekly, noise, and burst components, so the
// 30-day average tracks the calibrated mean while short windows exhibit the
// variability the paper observes (fluctuations, bursts, contention spikes).
type Profile struct {
	Seed uint64

	// Calibrated long-run means (fractions of the requested allocation).
	MeanCPU float64
	MeanMem float64

	// DiurnalAmp is the relative amplitude of the daily cycle (0..1);
	// enterprise workloads peak during working hours.
	DiurnalAmp float64
	// WeekendDip is the relative demand reduction on weekends (0..1).
	WeekendDip float64
	// PhaseHours shifts the daily peak (e.g. batch jobs at night).
	PhaseHours float64

	// NoiseAmp scales the per-sample multiplicative noise.
	NoiseAmp float64

	// BurstProb is the per-5-minute-bucket probability of a demand burst;
	// BurstMag is the burst multiplier. Bursts can push demand above the
	// allocation, which manifests as CPU contention on overcommitted
	// hosts (Figs. 8 and 9).
	BurstProb float64
	BurstMag  float64

	// MemGrowthPerDay models the slow memory growth some hosts show in
	// Fig. 10 (fraction per day, applied up to saturation).
	MemGrowthPerDay float64

	// Network baselines in Kbit/s (Figs. 11/12: tiny next to 200 Gbps).
	TxKbps float64
	RxKbps float64

	// DiskFrac is the fraction of the requested disk in use; storage
	// changes slowly (Fig. 13).
	DiskFrac float64
}

const (
	noiseBucket = 5 * sim.Minute // noise/burst correlation time
	hoursPerDay = 24.0
)

// cycle returns the diurnal+weekly demand multiplier at time t.
func (p *Profile) cycle(t sim.Time) float64 {
	hour := math.Mod(t.Hours()+p.PhaseHours, hoursPerDay)
	// Working-hours bump: cosine dipped at night, peaked at 13:00.
	day := 1 + p.DiurnalAmp*math.Cos((hour-13)/hoursPerDay*2*math.Pi)
	// Weekend dip: the epoch (2024-07-31) is a Wednesday (weekday 2 with
	// 0=Monday), so days 3,4 (Sat/Sun), 10,11, ... are weekends.
	dayIdx := int(t / sim.Day)
	weekday := (2 + dayIdx) % 7 // 0=Mon ... 5=Sat, 6=Sun
	if weekday >= 5 {
		day *= 1 - p.WeekendDip
	}
	return day
}

// noise returns a smooth multiplicative noise factor for time t.
func (p *Profile) noise(t sim.Time) float64 {
	b := uint64(t / noiseBucket)
	n := hashNormal(p.Seed, b)
	return math.Max(0.1, 1+p.NoiseAmp*n)
}

// burst returns the burst multiplier (1 when no burst is active).
func (p *Profile) burst(t sim.Time) float64 {
	b := uint64(t / noiseBucket)
	if hashUnit(p.Seed^0xb0b0, b) < p.BurstProb {
		return p.BurstMag
	}
	return 1
}

// CPUUsage implements vmmodel.UsageProfile.
func (p *Profile) CPUUsage(t sim.Time) float64 {
	v := p.MeanCPU * p.cycle(t) * p.noise(t) * p.burst(t)
	return clamp(v, 0, 1.5) // >1 models demand beyond the allocation
}

// MemUsage implements vmmodel.UsageProfile.
func (p *Profile) MemUsage(t sim.Time) float64 {
	grown := p.MeanMem + p.MemGrowthPerDay*t.Days()
	// Memory is much less volatile than CPU: small noise, no bursts.
	v := grown * (1 + 0.02*hashNormal(p.Seed^0x3333, uint64(t/sim.Hour)))
	return clamp(v, 0, 1)
}

// NetTxKbps implements vmmodel.UsageProfile.
func (p *Profile) NetTxKbps(t sim.Time) float64 {
	return math.Max(0, p.TxKbps*p.cycle(t)*p.noise(t))
}

// NetRxKbps implements vmmodel.UsageProfile.
func (p *Profile) NetRxKbps(t sim.Time) float64 {
	return math.Max(0, p.RxKbps*p.cycle(t)*p.noise(t+noiseBucket))
}

// DiskUsage implements vmmodel.UsageProfile.
func (p *Profile) DiskUsage(t sim.Time) float64 {
	// Slow, bounded growth.
	return clamp(p.DiskFrac*(1+0.002*t.Days()), 0, 1)
}

// AverageCPUOver estimates the profile's average CPU usage across a window
// by sampling at the given step; the analysis uses this to build Fig. 14a.
func (p *Profile) AverageCPUOver(from, to, step sim.Time) float64 {
	if step <= 0 || to <= from {
		return math.NaN()
	}
	sum, n := 0.0, 0
	for t := from; t < to; t += step {
		sum += p.CPUUsage(t)
		n++
	}
	return sum / float64(n)
}
