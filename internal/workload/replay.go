package workload

import (
	"fmt"
	"sort"

	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
	"sapsim/internal/vmmodel"
)

// Trace replay: the point of a public dataset is that others can drive
// their schedulers with the *recorded* workload rather than a synthetic
// one. ReplayProfile turns released per-VM telemetry series back into usage
// profiles, and BuildReplay reconstructs a schedulable workload from a
// dataset store.

// ReplayProfile is a vmmodel.UsageProfile backed by recorded series. Values
// between samples follow last-observation-carried-forward semantics, the
// same staleness rule the monitoring system applies.
type ReplayProfile struct {
	CPU  *telemetry.Series // usage ratio (0..1)
	Mem  *telemetry.Series // usage ratio (0..1)
	Tx   *telemetry.Series // Kbit/s (optional)
	Rx   *telemetry.Series // Kbit/s (optional)
	Disk *telemetry.Series // usage ratio (optional)
	// Fallback values used before the first sample of a series or when a
	// series is absent.
	FallbackCPU, FallbackMem, FallbackDisk float64
}

func seriesAt(s *telemetry.Series, t sim.Time, fallback float64) float64 {
	if s == nil {
		return fallback
	}
	if v, ok := s.At(t); ok {
		return v
	}
	return fallback
}

// CPUUsage implements vmmodel.UsageProfile.
func (r *ReplayProfile) CPUUsage(t sim.Time) float64 {
	return seriesAt(r.CPU, t, r.FallbackCPU)
}

// MemUsage implements vmmodel.UsageProfile.
func (r *ReplayProfile) MemUsage(t sim.Time) float64 {
	return seriesAt(r.Mem, t, r.FallbackMem)
}

// NetTxKbps implements vmmodel.UsageProfile.
func (r *ReplayProfile) NetTxKbps(t sim.Time) float64 { return seriesAt(r.Tx, t, 0) }

// NetRxKbps implements vmmodel.UsageProfile.
func (r *ReplayProfile) NetRxKbps(t sim.Time) float64 { return seriesAt(r.Rx, t, 0) }

// DiskUsage implements vmmodel.UsageProfile.
func (r *ReplayProfile) DiskUsage(t sim.Time) float64 {
	return seriesAt(r.Disk, t, r.FallbackDisk)
}

// Metric names of the released per-VM series (Appendix C). Declared here
// rather than importing internal/exporter to keep workload dependency-free.
const (
	replayCPUMetric = "vrops_virtualmachine_cpu_usage_ratio"
	replayMemMetric = "vrops_virtualmachine_memory_consumed_ratio"
)

// BuildReplay reconstructs the workload recorded in a dataset store: one
// instance per VM that has CPU telemetry, with flavor resolved through the
// "flavor" label, arrival at the first sample, and lifetime spanning the
// recorded window (VMs observed until the end are treated as surviving the
// horizon).
func BuildReplay(q telemetry.Querier, horizon sim.Time) ([]*Instance, error) {
	cpu := q.Select(replayCPUMetric)
	if len(cpu) == 0 {
		return nil, fmt.Errorf("workload: store has no %s series", replayCPUMetric)
	}
	mem := q.Select(replayMemMetric)
	memByVM := make(map[string]*telemetry.Series, len(mem))
	for _, s := range mem {
		memByVM[s.Labels.Get("virtualmachine")] = s
	}
	catalog := vmmodel.CatalogByName()

	var out []*Instance
	for _, s := range cpu {
		id := s.Labels.Get("virtualmachine")
		if id == "" || len(s.Samples) == 0 {
			continue
		}
		flavorName := s.Labels.Get("flavor")
		flavor, ok := catalog[flavorName]
		if !ok {
			return nil, fmt.Errorf("workload: VM %s has unknown flavor %q", id, flavorName)
		}
		first := s.Samples[0].T
		last := s.Samples[len(s.Samples)-1].T

		profile := &ReplayProfile{
			CPU:         s,
			Mem:         memByVM[id],
			FallbackCPU: s.Samples[0].V,
			FallbackMem: 0.5,
			// The released dataset has no per-VM disk series; a neutral
			// constant keeps storage accounting defined.
			FallbackDisk: 0.3,
		}
		if m := memByVM[id]; m != nil && len(m.Samples) > 0 {
			profile.FallbackMem = m.Samples[0].V
		}

		vm := &vmmodel.VM{
			ID:        vmmodel.ID(id),
			Flavor:    flavor,
			Project:   s.Labels.Get("project"),
			CreatedAt: first,
			Profile:   profile,
		}
		life := last - first
		if last >= horizon-sim.Hour {
			// Observed until the end: survives the replay window.
			life = horizon - first + sim.Day
		}
		if life <= 0 {
			life = sim.Hour
		}
		out = append(out, &Instance{VM: vm, ArriveAt: first, Lifetime: life})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ArriveAt != out[j].ArriveAt {
			return out[i].ArriveAt < out[j].ArriveAt
		}
		return out[i].VM.ID < out[j].VM.ID
	})
	return out, nil
}
