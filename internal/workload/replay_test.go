package workload

import (
	"math"
	"testing"

	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
)

func replayStore(t *testing.T) *telemetry.Store {
	t.Helper()
	st := telemetry.NewStore()
	// vm-a: full window, MK flavor, rising CPU.
	la := telemetry.MustLabels("virtualmachine", "vm-a", "flavor", "MK", "project", "p1")
	for i := 0; i <= 48; i++ {
		ts := sim.Time(i) * sim.Hour
		if err := st.Append("vrops_virtualmachine_cpu_usage_ratio", la, ts, 0.01*float64(i)); err != nil {
			t.Fatal(err)
		}
		if err := st.Append("vrops_virtualmachine_memory_consumed_ratio", la, ts, 0.8); err != nil {
			t.Fatal(err)
		}
	}
	// vm-b: appears at 10h, disappears at 20h (deleted mid-window).
	lb := telemetry.MustLabels("virtualmachine", "vm-b", "flavor", "XLG", "project", "p2")
	for i := 10; i <= 20; i++ {
		ts := sim.Time(i) * sim.Hour
		if err := st.Append("vrops_virtualmachine_cpu_usage_ratio", lb, ts, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestBuildReplay(t *testing.T) {
	st := replayStore(t)
	insts, err := BuildReplay(st, 2*sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 2 {
		t.Fatalf("instances = %d, want 2", len(insts))
	}
	// Sorted by arrival: vm-a (t=0) then vm-b (t=10h).
	a, b := insts[0], insts[1]
	if a.VM.ID != "vm-a" || b.VM.ID != "vm-b" {
		t.Fatalf("order = %s, %s", a.VM.ID, b.VM.ID)
	}
	if a.VM.Flavor.Name != "MK" || b.VM.Flavor.Name != "XLG" {
		t.Errorf("flavors = %s, %s", a.VM.Flavor.Name, b.VM.Flavor.Name)
	}
	if a.VM.Project != "p1" {
		t.Errorf("project = %s", a.VM.Project)
	}
	// vm-a observed until the end → survives the window.
	if a.DeleteAt() <= 2*sim.Day {
		t.Errorf("vm-a should outlive the window, deletes at %v", a.DeleteAt())
	}
	// vm-b's lifetime is its observed span.
	if b.ArriveAt != 10*sim.Hour || b.Lifetime != 10*sim.Hour {
		t.Errorf("vm-b timeline = arrive %v, life %v", b.ArriveAt, b.Lifetime)
	}
}

func TestReplayProfileValues(t *testing.T) {
	st := replayStore(t)
	insts, err := BuildReplay(st, 2*sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	p := insts[0].VM.Profile
	// At 24h the recorded value is 0.24; between samples, LOCF.
	if got := p.CPUUsage(24 * sim.Hour); math.Abs(got-0.24) > 1e-12 {
		t.Errorf("CPU@24h = %v, want 0.24", got)
	}
	if got := p.CPUUsage(24*sim.Hour + 30*sim.Minute); math.Abs(got-0.24) > 1e-12 {
		t.Errorf("CPU between samples = %v, want 0.24 (LOCF)", got)
	}
	if got := p.MemUsage(5 * sim.Hour); got != 0.8 {
		t.Errorf("Mem = %v, want 0.8", got)
	}
	// vm-b has no memory series → fallback.
	pb := insts[1].VM.Profile
	if got := pb.MemUsage(15 * sim.Hour); got != 0.5 {
		t.Errorf("fallback mem = %v, want 0.5", got)
	}
	// Before the first sample → fallback (vm-b fallback CPU = first value).
	if got := pb.CPUUsage(0); got != 0.5 {
		t.Errorf("pre-window CPU = %v, want fallback 0.5", got)
	}
	// Optional series absent → zero network, constant disk.
	if pb.NetTxKbps(0) != 0 || pb.NetRxKbps(0) != 0 {
		t.Error("absent network series should be 0")
	}
	if pb.DiskUsage(0) != 0.3 {
		t.Errorf("disk fallback = %v", pb.DiskUsage(0))
	}
}

func TestBuildReplayErrors(t *testing.T) {
	if _, err := BuildReplay(telemetry.NewStore(), sim.Day); err == nil {
		t.Error("empty store accepted")
	}
	st := telemetry.NewStore()
	l := telemetry.MustLabels("virtualmachine", "vm-x", "flavor", "NOPE")
	if err := st.Append("vrops_virtualmachine_cpu_usage_ratio", l, 0, 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildReplay(st, sim.Day); err == nil {
		t.Error("unknown flavor accepted")
	}
}

func TestBuildReplaySkipsUnlabeled(t *testing.T) {
	st := replayStore(t)
	// A series without a virtualmachine label must be ignored.
	l := telemetry.MustLabels("other", "x")
	if err := st.Append("vrops_virtualmachine_cpu_usage_ratio", l, 0, 0.1); err != nil {
		t.Fatal(err)
	}
	insts, err := BuildReplay(st, 2*sim.Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 2 {
		t.Errorf("instances = %d, want 2", len(insts))
	}
}
