package workload

import (
	"math"
	"math/rand/v2"
	"testing"

	"sapsim/internal/sim"
	"sapsim/internal/vmmodel"
)

func TestHashUnitRangeAndDeterminism(t *testing.T) {
	for i := uint64(0); i < 1000; i++ {
		v := hashUnit(42, i)
		if v < 0 || v >= 1 {
			t.Fatalf("hashUnit out of range: %v", v)
		}
		if v != hashUnit(42, i) {
			t.Fatal("hashUnit not deterministic")
		}
	}
	if hashUnit(1, 7) == hashUnit(2, 7) {
		t.Error("different seeds gave identical hash (suspicious)")
	}
}

func TestHashNormalMoments(t *testing.T) {
	n := 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := hashNormal(99, uint64(i))
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("hashNormal mean = %v, want ≈0", mean)
	}
	if variance < 0.8 || variance > 1.2 {
		t.Errorf("hashNormal variance = %v, want ≈1", variance)
	}
}

// Figure 14a calibration: >80% of VMs below 70% mean CPU usage.
func TestDrawMeanCPUMatchesFig14a(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	n := 20000
	under, optimal, over := 0, 0, 0
	for i := 0; i < n; i++ {
		v := drawMeanCPU(rng)
		if v < 0 || v > 1 {
			t.Fatalf("mean CPU out of range: %v", v)
		}
		switch {
		case v < 0.70:
			under++
		case v <= 0.85:
			optimal++
		default:
			over++
		}
	}
	if frac := float64(under) / float64(n); frac < 0.80 {
		t.Errorf("under-utilized CPU fraction = %.3f, want >0.80 (Fig. 14a)", frac)
	}
	if frac := float64(over) / float64(n); frac > 0.12 {
		t.Errorf("over-utilized CPU fraction = %.3f, want small", frac)
	}
}

// Figure 14b calibration: ≈38% under, ≈10% optimal, majority above 85%.
func TestDrawMeanMemMatchesFig14b(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	n := 20000
	under, optimal, over := 0, 0, 0
	for i := 0; i < n; i++ {
		v := drawMeanMem(rng, false)
		switch {
		case v < 0.70:
			under++
		case v <= 0.85:
			optimal++
		default:
			over++
		}
	}
	uf, of, vf := float64(under)/float64(n), float64(optimal)/float64(n), float64(over)/float64(n)
	if uf < 0.30 || uf > 0.46 {
		t.Errorf("memory under fraction = %.3f, want ≈0.38", uf)
	}
	if of < 0.05 || of > 0.16 {
		t.Errorf("memory optimal fraction = %.3f, want ≈0.10", of)
	}
	if vf < 0.42 || vf > 0.62 {
		t.Errorf("memory over fraction = %.3f, want ≈0.52", vf)
	}
}

func TestDrawMeanMemHANA(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 1000; i++ {
		v := drawMeanMem(rng, true)
		if v < 0.85 {
			t.Fatalf("HANA memory usage %v below 0.85; HANA pins its tables", v)
		}
	}
}

func TestProfileDeterministic(t *testing.T) {
	p := &Profile{Seed: 5, MeanCPU: 0.3, MeanMem: 0.8, DiurnalAmp: 0.2, NoiseAmp: 0.1, BurstProb: 0.01, BurstMag: 2, TxKbps: 100, RxKbps: 100, DiskFrac: 0.4}
	for _, ti := range []sim.Time{0, sim.Hour, 3 * sim.Day, 29 * sim.Day} {
		if p.CPUUsage(ti) != p.CPUUsage(ti) {
			t.Fatal("CPUUsage not deterministic")
		}
		if p.MemUsage(ti) != p.MemUsage(ti) {
			t.Fatal("MemUsage not deterministic")
		}
	}
}

func TestProfileBounds(t *testing.T) {
	p := &Profile{Seed: 11, MeanCPU: 0.9, MeanMem: 0.95, DiurnalAmp: 0.4, WeekendDip: 0.3, NoiseAmp: 0.25, BurstProb: 0.5, BurstMag: 3, TxKbps: 5000, RxKbps: 5000, DiskFrac: 0.9, MemGrowthPerDay: 0.01}
	for ti := sim.Time(0); ti < 30*sim.Day; ti += 37 * sim.Minute {
		if c := p.CPUUsage(ti); c < 0 || c > 1.5 {
			t.Fatalf("CPUUsage out of [0,1.5]: %v at %v", c, ti)
		}
		if m := p.MemUsage(ti); m < 0 || m > 1 {
			t.Fatalf("MemUsage out of [0,1]: %v at %v", m, ti)
		}
		if d := p.DiskUsage(ti); d < 0 || d > 1 {
			t.Fatalf("DiskUsage out of [0,1]: %v", d)
		}
		if p.NetTxKbps(ti) < 0 || p.NetRxKbps(ti) < 0 {
			t.Fatal("negative network usage")
		}
	}
}

func TestProfileAverageTracksMean(t *testing.T) {
	p := &Profile{Seed: 13, MeanCPU: 0.25, DiurnalAmp: 0.2, WeekendDip: 0.2, NoiseAmp: 0.1, BurstProb: 0.005, BurstMag: 2}
	avg := p.AverageCPUOver(0, 30*sim.Day, 10*sim.Minute)
	if math.Abs(avg-0.25) > 0.06 {
		t.Errorf("30-day average = %v, want ≈0.25", avg)
	}
	if !math.IsNaN(p.AverageCPUOver(0, 0, sim.Minute)) {
		t.Error("empty window should be NaN")
	}
}

func TestProfileWeekendDip(t *testing.T) {
	p := &Profile{Seed: 17, MeanCPU: 0.5, WeekendDip: 0.4}
	// Epoch is Wednesday; days 3 and 4 are Saturday and Sunday. Compare
	// the same time of day.
	wed := p.CPUUsage(13 * sim.Hour)
	sat := p.CPUUsage(3*sim.Day + 13*sim.Hour)
	sun := p.CPUUsage(4*sim.Day + 13*sim.Hour)
	mon := p.CPUUsage(5*sim.Day + 13*sim.Hour)
	if sat >= wed {
		t.Errorf("Saturday usage %v not below weekday %v", sat, wed)
	}
	if sun >= wed {
		t.Errorf("Sunday usage %v not below weekday %v", sun, wed)
	}
	if mon < wed-1e-9 {
		t.Errorf("Monday usage %v dipped like a weekend (%v)", mon, wed)
	}
}

func TestProfileDiurnalCycle(t *testing.T) {
	p := &Profile{Seed: 19, MeanCPU: 0.5, DiurnalAmp: 0.3}
	peak := p.CPUUsage(13 * sim.Hour)  // 13:00
	trough := p.CPUUsage(1 * sim.Hour) // 01:00
	if peak <= trough {
		t.Errorf("diurnal peak %v not above trough %v", peak, trough)
	}
}

func TestMemGrowth(t *testing.T) {
	p := &Profile{Seed: 23, MeanMem: 0.5, MemGrowthPerDay: 0.005}
	early := p.MemUsage(sim.Hour)
	late := p.MemUsage(29 * sim.Day)
	if late <= early {
		t.Errorf("memory did not grow: %v -> %v", early, late)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := NewGenerator(DefaultSpec(500, 42)).Generate()
	b := NewGenerator(DefaultSpec(500, 42)).Generate()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].VM.ID != b[i].VM.ID || a[i].ArriveAt != b[i].ArriveAt || a[i].Lifetime != b[i].Lifetime {
			t.Fatalf("instance %d differs", i)
		}
	}
	c := NewGenerator(DefaultSpec(500, 43)).Generate()
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i].Lifetime != c[i].Lifetime {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical workloads")
		}
	}
}

func TestGeneratePopulationSize(t *testing.T) {
	insts := NewGenerator(DefaultSpec(1000, 1)).Generate()
	initial := 0
	for _, in := range insts {
		if in.ArriveAt <= 0 {
			initial++
		}
	}
	// Rounding and the one-per-flavor floor allow slight deviation.
	if initial < 950 || initial > 1100 {
		t.Errorf("initial population = %d, want ≈1000", initial)
	}
}

func TestGenerateSortedAndTimed(t *testing.T) {
	insts := NewGenerator(DefaultSpec(300, 2)).Generate()
	for i := 1; i < len(insts); i++ {
		if insts[i-1].ArriveAt > insts[i].ArriveAt {
			t.Fatal("instances not sorted by arrival")
		}
	}
	for _, in := range insts {
		if in.Lifetime < 5*sim.Minute {
			t.Fatalf("lifetime %v below the 5-minute floor", in.Lifetime)
		}
		if in.ArriveAt > 0 && in.ArriveAt >= 30*sim.Day {
			t.Fatalf("arrival %v beyond horizon", in.ArriveAt)
		}
		if in.VM.Profile == nil {
			t.Fatal("VM missing profile")
		}
		if in.DeleteAt() != in.ArriveAt+in.Lifetime {
			t.Fatal("DeleteAt inconsistent")
		}
	}
}

func TestGenerateFlavorCoverage(t *testing.T) {
	insts := NewGenerator(DefaultSpec(200, 3)).Generate()
	seen := map[string]bool{}
	for _, in := range insts {
		seen[in.VM.Flavor.Name] = true
	}
	if len(seen) != len(vmmodel.Catalog()) {
		t.Errorf("only %d/%d flavors instantiated", len(seen), len(vmmodel.Catalog()))
	}
}

// Figure 15 shape: lifetimes span minutes to years; the population median
// sits near one week; XL flavors skew long-lived.
func TestLifetimeDistributionMatchesFig15(t *testing.T) {
	g := NewGenerator(DefaultSpec(2000, 4))
	cat := vmmodel.CatalogByName()

	// Per-flavor medians should track MeanLifetimeHours.
	for _, name := range []string{"SA", "MK", "XLL"} {
		f := cat[name]
		var lives []float64
		for i := 0; i < 500; i++ {
			lives = append(lives, g.Lifetime(f).Hours())
		}
		med := median(lives)
		if med < f.MeanLifetimeHours/3 || med > f.MeanLifetimeHours*3 {
			t.Errorf("%s: median lifetime %.0fh, want ≈%.0fh", name, med, f.MeanLifetimeHours)
		}
	}

	// Population-weighted median: draw lifetimes following flavor quotas.
	insts := NewGenerator(DefaultSpec(3000, 5)).Generate()
	var all []float64
	for _, in := range insts {
		if in.ArriveAt <= 0 { // population at epoch, like the paper's snapshot
			all = append(all, in.Lifetime.Hours())
		}
	}
	med := median(all)
	week := 168.0
	if med < week/3 || med > week*3 {
		t.Errorf("population median lifetime = %.0fh, want ≈%.0fh (1 week)", med, week)
	}
}

func TestInitialPopulationAgesWithinLifetime(t *testing.T) {
	insts := NewGenerator(DefaultSpec(500, 6)).Generate()
	for _, in := range insts {
		if in.ArriveAt <= 0 {
			age := -in.ArriveAt
			if age > in.Lifetime {
				t.Fatalf("initial VM age %v exceeds lifetime %v", age, in.Lifetime)
			}
		}
	}
}

func TestHANAProfilesMemoryHeavy(t *testing.T) {
	insts := NewGenerator(DefaultSpec(2000, 7)).Generate()
	for _, in := range insts {
		if in.VM.Flavor.Class != vmmodel.HANA {
			continue
		}
		p := in.VM.Profile.(*Profile)
		if p.MeanMem < 0.85 {
			t.Fatalf("HANA VM %s mean memory %v < 0.85", in.VM.ID, p.MeanMem)
		}
	}
}

func median(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), vals...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}
