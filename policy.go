package sapsim

import (
	"fmt"
	"sort"
	"sync"

	"sapsim/internal/nova"
)

// Policy is a named placement-policy preset: a registered mutation of the
// run configuration that swaps scheduler weighers, node policies, and
// telemetry feeds as one unit. Policies follow the telegraf plugin-registry
// idiom — packages register them from init, consumers select them by name
// (Session's WithPolicy, the scheduler-comparison example, CLI flags) —
// so experiments stop hand-wiring scheduler internals at every call site.
type Policy struct {
	Name        string
	Description string
	// Apply mutates a per-run copy of the config. It must be safe to call
	// on any base config and must not retain the pointer.
	Apply func(*Config)
}

var policyRegistry = struct {
	sync.RWMutex
	byName map[string]Policy
}{byName: make(map[string]Policy)}

// RegisterPolicy adds a policy to the registry. Registration typically
// happens from init; an empty name, nil Apply, or duplicate name panics,
// surfacing wiring bugs at process start rather than mid-experiment.
func RegisterPolicy(p Policy) {
	if p.Name == "" {
		panic("sapsim: RegisterPolicy with empty name")
	}
	if p.Apply == nil {
		panic(fmt.Sprintf("sapsim: policy %q has nil Apply", p.Name))
	}
	policyRegistry.Lock()
	defer policyRegistry.Unlock()
	if _, dup := policyRegistry.byName[p.Name]; dup {
		panic(fmt.Sprintf("sapsim: duplicate policy %q", p.Name))
	}
	policyRegistry.byName[p.Name] = p
}

// Policies returns every registered policy sorted by name, the production
// default first.
func Policies() []Policy {
	policyRegistry.RLock()
	defer policyRegistry.RUnlock()
	out := make([]Policy, 0, len(policyRegistry.byName))
	for _, p := range policyRegistry.byName {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if (out[i].Name == PolicyProduction) != (out[j].Name == PolicyProduction) {
			return out[i].Name == PolicyProduction
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// PolicyByName looks up one registered policy.
func PolicyByName(name string) (Policy, bool) {
	policyRegistry.RLock()
	defer policyRegistry.RUnlock()
	p, ok := policyRegistry.byName[name]
	return p, ok
}

// Builtin policy names.
const (
	// PolicyProduction is the paper's production posture: spread
	// general-purpose workloads, bin-pack HANA.
	PolicyProduction = "sap-production"
	// PolicySpread spreads every workload class, HANA included.
	PolicySpread = "spread-everything"
	// PolicyPack bin-packs every workload class (BestFit-style).
	PolicyPack = "pack-everything"
	// PolicyContentionAware weighs recent per-BB CPU contention into
	// placement, the Sec. 7 "CPU contention should be mitigated" guidance.
	PolicyContentionAware = "contention-aware"
)

func init() {
	RegisterPolicy(Policy{
		Name:        PolicyProduction,
		Description: "spread general-purpose, bin-pack HANA (the paper's production posture)",
		Apply:       func(*Config) {},
	})
	RegisterPolicy(Policy{
		Name:        PolicySpread,
		Description: "spread all workload classes across building blocks and nodes",
		Apply: func(cfg *Config) {
			cfg.Scheduler.Weighers = []nova.Weigher{
				nova.RAMWeigher{Mult: 1, SAPPolicy: false},
				nova.CPUWeigher{Mult: 0.5},
			}
			cfg.Scheduler.HANANodePolicy = nova.SpreadNodes
		},
	})
	RegisterPolicy(Policy{
		Name:        PolicyPack,
		Description: "bin-pack all workload classes (BestFit-style consolidation)",
		Apply: func(cfg *Config) {
			cfg.Scheduler.Weighers = []nova.Weigher{
				nova.RAMWeigher{Mult: -1},
				nova.CPUWeigher{Mult: -0.5},
			}
			cfg.Scheduler.GeneralNodePolicy = nova.PackNodes
			cfg.Scheduler.HANANodePolicy = nova.PackNodes
		},
	})
	RegisterPolicy(Policy{
		Name:        PolicyContentionAware,
		Description: "feed per-BB contention telemetry into a contention weigher",
		Apply: func(cfg *Config) {
			cfg.ContentionFeed = true
			cfg.Scheduler.Weighers = []nova.Weigher{
				nova.ContentionWeigher{Mult: 2},
				nova.RAMWeigher{Mult: 1, SAPPolicy: true},
				nova.CPUWeigher{Mult: 0.5},
			}
		},
	})
}
