package sapsim

import (
	"fmt"
	"io"

	"sapsim/internal/engprof"
	"sapsim/internal/sim"
)

// Profile is the engine self-profiler's per-phase wall-time and work
// attribution for one cell (or, after merging, a whole sweep). It is
// internal/engprof.Profile re-exported: phases cover event dispatch bucketed
// by owner, scheduler filter/weigh/claim, DRS scan/decide, telemetry
// sampling, injector firing, and snapshot encoding. Profiles are wall-clock
// measurements — deliberately excluded from the golden artifact set — and
// their collection never perturbs the simulation's event order or RNG
// stream.
type Profile = engprof.Profile

// ProfileFormatVersion is the profile serialization format this build
// writes and accepts.
const ProfileFormatVersion = engprof.FormatVersion

// ProfileReady delivers the finished run's self-profile, emitted once when
// the session reaches the horizon.
type ProfileReady struct {
	At      sim.Time
	Profile *Profile
}

func (ProfileReady) sessionEvent() {}

// EncodeProfile serializes a profile as JSON.
func EncodeProfile(w io.Writer, p *Profile) error { return p.Encode(w) }

// EncodeProfileBytes is EncodeProfile into a fresh byte slice.
func EncodeProfileBytes(p *Profile) ([]byte, error) { return p.EncodeBytes() }

// DecodeProfile reads and validates a serialized profile, rejecting foreign
// format versions.
func DecodeProfile(r io.Reader) (*Profile, error) { return engprof.Decode(r) }

// DecodeProfileBytes is DecodeProfile from a byte slice.
func DecodeProfileBytes(b []byte) (*Profile, error) { return engprof.DecodeBytes(b) }

// Profile returns the session's live self-profile: per-phase attribution of
// the wall time and work spent so far. It is valid on a built, running, or
// finished session between driving calls; each call snapshots the current
// counters, so a supervisor polling mid-run sees monotonically growing
// phases.
func (s *Session) Profile() (*Profile, error) {
	switch s.state {
	case StateNew:
		if err := s.Build(); err != nil {
			return nil, err
		}
	case StateBuilt, StateRunning, StateDone:
	default:
		return nil, fmt.Errorf("sapsim: Profile on %s session", s.state)
	}
	return s.sim.Result().Profile, nil
}

// snapshotBudgetPct is the ceiling on snapshot-encode cost as a share of
// the run's measured engine time before the session stretches its snapshot
// cadence, and maxSnapshotStretch caps how far the configured interval can
// stretch (so a supervisor's resume-lag bound degrades gracefully instead
// of unboundedly).
const (
	snapshotBudgetPct  = 2
	maxSnapshotStretch = 8
	// snapshotStretchFloorNanos is the cumulative capture cost below which
	// the budget check is moot: stretching exists to reclaim material wall
	// time, and tiny cells — where a sub-millisecond capture can dwarf an
	// even cheaper simulated interval by percentage — should keep their
	// configured (and test-asserted) cadence.
	snapshotStretchFloorNanos = 50e6
)

// stretchSnapshotEvery decides the session's next snapshot interval: when
// cumulative snapshot-capture cost exceeds snapshotBudgetPct of the run's
// accounted engine time, the current interval doubles (capped at
// maxSnapshotStretch × the configured base). Tiny cells — where a capture
// costs as much as simulating the interval — back off; full-size cells
// never cross the threshold and keep their configured cadence. The decision
// reads only the profiler's wall-clock counters, so it cannot perturb
// simulated event order.
func stretchSnapshotEvery(base, current sim.Time, encodeNanos, accountedNanos int64) sim.Time {
	if encodeNanos < snapshotStretchFloorNanos {
		return current
	}
	if accountedNanos <= 0 || encodeNanos*100 <= accountedNanos*snapshotBudgetPct {
		return current
	}
	stretched := current * 2
	if cap := base * maxSnapshotStretch; stretched > cap {
		stretched = cap
	}
	return stretched
}
