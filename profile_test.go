package sapsim

import (
	"testing"

	"sapsim/internal/engprof"
	"sapsim/internal/sim"
)

// TestSessionProfile: a finished session carries a valid self-profile whose
// top-level phases account for its measured engine time, a ProfileReady
// event delivers it, and the wire round trip preserves it.
func TestSessionProfile(t *testing.T) {
	col := &collector{}
	cfg := snapshotTestConfig(21)
	s, err := NewSession(cfg, WithObserver(col), WithSnapshotEvery(12*sim.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	p, err := s.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		t.Fatal("finished session has nil profile")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Events == 0 || p.AccountedNanos <= 0 {
		t.Fatalf("profile saw %d events, %d ns accounted; want both positive", p.Events, p.AccountedNanos)
	}
	// The attribution criterion: top-level phases must cover at least 90% of
	// the accounted cell time (by construction they cover 100%; the check
	// guards the envelope against a future phase being dropped from the sum).
	if top := p.TopLevelNanos(); top*10 < p.AccountedNanos*9 {
		t.Fatalf("top-level phases cover %d of %d accounted ns (<90%%)", top, p.AccountedNanos)
	}
	for _, ph := range []engprof.Phase{engprof.PhaseBuild, engprof.PhaseHostSample, engprof.PhaseSnapshotEncode} {
		if c := p.Phase(ph); c.Count == 0 {
			t.Errorf("phase %s never observed", ph)
		}
	}
	if c := p.Phase(engprof.PhaseInject); c.Count == 0 {
		t.Error("injector firings not attributed despite configured HostFailures")
	}

	var ready *ProfileReady
	for _, ev := range col.snapshot() {
		if pr, ok := ev.(ProfileReady); ok {
			pr := pr
			ready = &pr
		}
	}
	if ready == nil {
		t.Fatal("no ProfileReady event emitted")
	}
	if ready.At != cfg.Horizon() || ready.Profile == nil {
		t.Fatalf("ProfileReady at %v with profile %v, want horizon-time delivery", ready.At, ready.Profile)
	}

	b, err := EncodeProfileBytes(p)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := DecodeProfileBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if rt.AccountedNanos != p.AccountedNanos || rt.Events != p.Events || len(rt.Owners) != len(p.Owners) {
		t.Fatal("profile wire round trip lost data")
	}
}

// TestSessionProfileMidRun: Profile is readable between driving calls and
// grows monotonically.
func TestSessionProfileMidRun(t *testing.T) {
	s, err := NewSession(sessionTestConfig(22))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Step(4); err != nil {
		t.Fatal(err)
	}
	early, err := s.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	late, err := s.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if late.Events <= early.Events || late.AccountedNanos <= early.AccountedNanos {
		t.Fatalf("profile did not grow: events %d -> %d, nanos %d -> %d",
			early.Events, late.Events, early.AccountedNanos, late.AccountedNanos)
	}
}

// TestStretchSnapshotEvery pins the adaptive-cadence decision in both
// directions: material capture cost over the 2% budget stretches (doubling,
// capped at 8x the configured base); full-size-cell profiles — where
// capture is a fraction of a percent of engine time — and immaterial
// absolute costs keep the configured cadence.
func TestStretchSnapshotEvery(t *testing.T) {
	base := 6 * sim.Hour
	second := int64(1e9)
	cases := []struct {
		name          string
		current       sim.Time
		encode, acctd int64
		want          sim.Time
	}{
		{"full-size cell under budget keeps cadence", base, 200e6, 60 * second, base},
		{"tiny cell under absolute floor keeps cadence", base, 40e6, 100e6, base},
		{"over budget doubles", base, 5 * second, 60 * second, 2 * base},
		{"keeps doubling while over budget", 2 * base, 10 * second, 120 * second, 4 * base},
		{"stretch capped at 8x base", 8 * base, 100 * second, 200 * second, 8 * base},
		{"zero accounted keeps cadence", base, 60e6, 0, base},
	}
	for _, tc := range cases {
		if got := stretchSnapshotEvery(base, tc.current, tc.encode, tc.acctd); got != tc.want {
			t.Errorf("%s: stretchSnapshotEvery(%v, %v, %d, %d) = %v, want %v",
				tc.name, base, tc.current, tc.encode, tc.acctd, got, tc.want)
		}
	}
}

// TestSnapshotCadenceStretchIntegration drives the session boundary logic
// with a profiler state that blows the encode budget and asserts the next
// boundary moves out — the session-level half of the adaptive cadence.
func TestSnapshotCadenceStretchIntegration(t *testing.T) {
	cfg := sessionTestConfig(23)
	every := 6 * sim.Hour
	s, err := NewSession(cfg, WithSnapshotEvery(every))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	// Inflate the capture phase far past both the absolute floor and the 2%
	// budget, then cross one snapshot boundary.
	prof := s.sim.Profiler()
	mark := prof.Start() - 10*int64(1e9)
	prof.EndSpan(engprof.PhaseSnapshotEncode, mark, 1)
	if _, err := s.Step(int((every + cfg.SampleEvery) / cfg.SampleEvery)); err != nil {
		t.Fatal(err)
	}
	if s.snapEvery <= every {
		t.Fatalf("effective cadence %v did not stretch past configured %v", s.snapEvery, every)
	}
	if s.nextSnapshot != every+s.snapEvery {
		t.Fatalf("next boundary %v, want %v", s.nextSnapshot, every+s.snapEvery)
	}
	// And the run still completes normally at the stretched cadence.
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Result(); err != nil {
		t.Fatal(err)
	}
}
