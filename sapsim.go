// Package sapsim reproduces "The SAP Cloud Infrastructure Dataset: A
// Reality Check of Scheduling and Placement of VMs in Cloud Computing"
// (IMC '25) as a runnable system: a discrete-event simulation of the
// paper's regional deployment — OpenStack Nova filter/weigher placement on
// top of VMware-style building blocks with DRS rebalancing — driven by a
// workload generator calibrated to the paper's published distributions, and
// an analysis layer that regenerates every table and figure of the
// evaluation.
//
// Quick start (blocking wrapper):
//
//	res, err := sapsim.Run(sapsim.DefaultConfig(42))
//	...
//	for _, exp := range sapsim.Experiments() {
//	    art, err := exp.Compute(res)
//	    fmt.Println(art.Text)
//	}
//
// The primary API is the Session lifecycle — composable, observable, and
// cancellable:
//
//	s, _ := sapsim.NewSession(cfg, sapsim.WithContext(ctx),
//	    sapsim.WithObserverFunc(func(ev sapsim.SessionEvent) { ... }))
//	defer s.Close()
//	if err := s.RunToCompletion(); err != nil { ... }
//	res, _ := s.Result()
package sapsim

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"

	"sapsim/internal/analysis"
	"sapsim/internal/core"
	"sapsim/internal/exporter"
	"sapsim/internal/report"
	"sapsim/internal/telemetry"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
)

// telemetryMatcher restricts heatmaps to one DC or cluster.
type telemetryMatcher = telemetry.Matcher

// Config configures an experiment run. It is core.Config re-exported.
type Config = core.Config

// Result carries a finished run. It is core.Result re-exported.
type Result = core.Result

// DefaultConfig returns the laptop-scale replica of the paper's setup.
func DefaultConfig(seed uint64) Config { return core.DefaultConfig(seed) }

// Artifact is one regenerated table or figure.
type Artifact struct {
	ID    string
	Title string
	// PaperClaim states what the paper reports, for side-by-side review.
	PaperClaim string
	// Text is the rendered table or series.
	Text string
	// Values holds the measured headline numbers keyed by name.
	Values map[string]float64
}

// Stage classifies the earliest lifecycle point at which an experiment's
// inputs are final, enabling incremental artifact emission: a Session with
// WithIncrementalArtifacts computes each artifact as soon as its stage is
// reached instead of waiting for the full window.
type Stage int

const (
	// StageComplete needs the full observation window (all telemetry
	// figures). The zero value, so unannotated experiments wait for the
	// horizon.
	StageComplete Stage = iota
	// StageStatic has no run-dependent inputs (tables 3-5).
	StageStatic
	// StageEpoch needs only the epoch population, final once the initial
	// placement at t=0 completes (tables 1-2).
	StageEpoch
	// StageArrivals needs the full arrival sequence, final once the last
	// in-window VM arrival has been processed (fig15 lifetimes).
	StageArrivals
)

// Experiment maps one paper artifact to the code that regenerates it.
type Experiment struct {
	ID         string
	Title      string
	PaperClaim string
	// Stage marks when the experiment's inputs are final (see Stage).
	Stage   Stage
	Compute func(res *Result) (*Artifact, error)
}

// netFreeTransform converts a NIC rate in Kbps to free-bandwidth percent
// given the 200 Gbps line rate of the paper's data center.
func netFreeTransform(kbps float64) float64 {
	const lineKbps = 200 * 1e6 // 200 Gbps in Kbit/s
	return 100 - kbps/lineKbps*100
}

// msToSec converts milliseconds to seconds (Fig. 8 axis).
func msToSec(ms float64) float64 { return ms / 1000 }

// firstDC returns the name of the region's first data center — the "single
// data center" of Figs. 5 and 10–13.
func firstDC(res *Result) string {
	dcs := res.Region.Datacenters()
	if len(dcs) == 0 {
		return ""
	}
	return dcs[0].Name
}

// largestBB returns the building block with the most nodes in the first DC
// (Fig. 7 zooms into one BB).
func largestBB(res *Result) *topology.BuildingBlock {
	dcs := res.Region.Datacenters()
	if len(dcs) == 0 {
		return nil
	}
	var best *topology.BuildingBlock
	for _, bb := range dcs[0].BBs {
		if best == nil || len(bb.Nodes) > len(best.Nodes) {
			best = bb
		}
	}
	return best
}

// heatmapArtifact assembles a heatmap artifact with spread statistics.
func heatmapArtifact(id, title, claim string, h *analysis.Heatmap) *Artifact {
	values := map[string]float64{"columns": float64(len(h.Columns))}
	if n := len(h.Columns); n > 0 {
		values["most_free_pct"] = h.ColumnMean(0)
		values["least_free_pct"] = h.ColumnMean(n - 1)
		values["spread_pct"] = h.ColumnMean(0) - h.ColumnMean(n-1)
	}
	return &Artifact{
		ID: id, Title: title, PaperClaim: claim,
		// A shaded preview (the figure's visual) followed by the full
		// CSV series (the figure's data).
		Text:   report.HeatmapASCII(h, 0, 100) + "\n" + report.HeatmapCSV(h),
		Values: values,
	}
}

// experimentIndex is the experiment list plus its by-ID index, built
// exactly once: Experiments and ExperimentByID share it, so the lookup map
// and the slice cannot drift.
type experimentIndex struct {
	list  []Experiment
	index map[string]int
}

var experimentCatalog = sync.OnceValue(func() experimentIndex {
	list := buildExperiments()
	index := make(map[string]int, len(list))
	for i, e := range list {
		if _, dup := index[e.ID]; dup {
			panic(fmt.Sprintf("sapsim: duplicate experiment ID %q", e.ID))
		}
		index[e.ID] = i
	}
	return experimentIndex{list: list, index: index}
})

// Experiments returns every table and figure of the paper's evaluation, in
// paper order. Each Compute consumes a finished Run result.
func Experiments() []Experiment {
	c := experimentCatalog()
	out := make([]Experiment, len(c.list))
	copy(out, c.list)
	return out
}

// ExperimentByID looks up one experiment through the catalog's index (built
// once; no linear scan).
func ExperimentByID(id string) (Experiment, bool) {
	c := experimentCatalog()
	i, ok := c.index[id]
	if !ok {
		return Experiment{}, false
	}
	return c.list[i], true
}

// ArtifactSet computes every experiment over the finished run and returns
// artifact ID → rendered text: the artifact bodies themselves, in the form
// ArtifactDigests fingerprints and the dispatch layer ships into the
// content-addressed store behind report bundles.
func ArtifactSet(res *Result) (map[string]string, error) {
	out := make(map[string]string)
	for _, exp := range Experiments() {
		art, err := exp.Compute(res)
		if err != nil {
			return nil, fmt.Errorf("sapsim: %s: %w", exp.ID, err)
		}
		out[exp.ID] = art.Text
	}
	return out, nil
}

// ArtifactDigests computes every experiment over the finished run and
// returns artifact ID → SHA-256 of the rendered text. It is the full
// fingerprint of a run — the basis of the golden harness, of cross-cell
// artifact diffing (cmd/sweep -diff), and of the dispatcher's byte-identity
// guarantee for distributed sweeps.
func ArtifactDigests(res *Result) (map[string]string, error) {
	set, err := ArtifactSet(res)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(set))
	for id, text := range set {
		out[id] = fmt.Sprintf("%x", sha256.Sum256([]byte(text)))
	}
	return out, nil
}

func buildExperiments() []Experiment {
	return []Experiment{
		{
			ID:         "fig5",
			Title:      "Daily average free CPU resources per node within a single data center",
			PaperClaim: "Strong imbalance: some nodes <20% free while others show >90% free, persistent across 30 days",
			Compute: func(res *Result) (*Artifact, error) {
				h := analysis.DailyHeatmap(res.Store, exporter.MetricHostCPUUtil, "hostsystem",
					res.Config.Days, analysis.FreePercent,
					matcherDC(res))
				return heatmapArtifact("fig5", "Free CPU per node (single DC)",
					"imbalanced node utilization", h), nil
			},
		},
		{
			ID:         "fig6",
			Title:      "Daily average free CPU resources per building block",
			PaperClaim: "BB-level utilization spans roughly 70-95% free with visible imbalance across BBs",
			Compute: func(res *Result) (*Artifact, error) {
				dc := firstDC(res)
				groupOf := func(node string) string {
					n, err := res.Region.Node(topology.NodeID(node))
					if err != nil || n.Datacenter().Name != dc {
						return ""
					}
					return string(n.BB.ID)
				}
				h := analysis.GroupedHeatmap(res.Store, exporter.MetricHostCPUUtil, "hostsystem",
					res.Config.Days, analysis.FreePercent, groupOf)
				return heatmapArtifact("fig6", "Free CPU per building block",
					"inter-BB imbalance", h), nil
			},
		},
		{
			ID:         "fig7",
			Title:      "Daily average free CPU resources per node within one building block",
			PaperClaim: "Within a BB some nodes are heavily utilized (down to ~60% free or less) while others stay free — intra-BB contention",
			Compute: func(res *Result) (*Artifact, error) {
				bb := largestBB(res)
				if bb == nil {
					return nil, fmt.Errorf("sapsim: region has no building blocks")
				}
				h := analysis.DailyHeatmap(res.Store, exporter.MetricHostCPUUtil, "hostsystem",
					res.Config.Days, analysis.FreePercent,
					matcherCluster(bb))
				return heatmapArtifact("fig7", fmt.Sprintf("Free CPU per node in BB %s", bb.ID),
					"intra-BB imbalance", h), nil
			},
		},
		{
			ID:         "fig8",
			Title:      "Top-10 nodes by CPU ready time across the region",
			PaperClaim: "Spikes up to ~220 s; multiple nodes exceed the 30 s baseline several times during the month",
			Compute: func(res *Result) (*Artifact, error) {
				top := analysis.TopKByMax(res.Store, exporter.MetricHostCPUReady, "hostsystem", 10, msToSec)
				values := map[string]float64{"nodes": float64(len(top))}
				above30 := 0
				for _, s := range top {
					if s.Max > 30 {
						above30++
					}
				}
				values["nodes_above_30s"] = float64(above30)
				if len(top) > 0 {
					values["max_ready_s"] = top[0].Max
					values["top_p95_s"] = top[0].P95
				}
				return &Artifact{
					ID: "fig8", Title: "CPU ready time, top-10 nodes",
					PaperClaim: "max ready time up to 220 s, 30 s threshold crossed repeatedly",
					Text:       report.NodeStatsTable(top, "s"),
					Values:     values,
				}, nil
			},
		},
		{
			ID:         "fig9",
			Title:      "Aggregated CPU contention over all nodes within the region",
			PaperClaim: "Daily mean and p95 below 5%; maxima between 10% and 40%, exceeding the 10% strict threshold; persistent, no weekly pattern",
			Compute: func(res *Result) (*Artifact, error) {
				days := analysis.DailyPooled(res.Store, exporter.MetricHostCPUCont, res.Config.Days)
				var meanSum, maxMax float64
				n := 0
				daysAbove10 := 0
				for _, d := range days {
					if d.N == 0 {
						continue
					}
					meanSum += d.Mean
					n++
					if d.Max > maxMax {
						maxMax = d.Max
					}
					if d.Max > 10 {
						daysAbove10++
					}
				}
				values := map[string]float64{"max_contention_pct": maxMax, "days_max_above_10pct": float64(daysAbove10)}
				if n > 0 {
					values["overall_mean_pct"] = meanSum / float64(n)
				}
				return &Artifact{
					ID: "fig9", Title: "Region-wide CPU contention per day",
					PaperClaim: "mean/p95 < 5%, max 10-40%+",
					Text:       report.DailySeriesCSV(days),
					Values:     values,
				}, nil
			},
		},
		{
			ID:         "fig10",
			Title:      "Daily average free memory resources per node within a single data center",
			PaperClaim: "Bimodal: a set of nodes nearly full (<20% free, bin-packed HANA) and a set with plentiful free memory; abrupt shifts from migrations/terminations",
			Compute: func(res *Result) (*Artifact, error) {
				h := analysis.DailyHeatmap(res.Store, exporter.MetricHostMemUsage, "hostsystem",
					res.Config.Days, analysis.FreePercent, matcherDC(res))
				return heatmapArtifact("fig10", "Free memory per node (single DC)",
					"memory-constrained subset of hosts", h), nil
			},
		},
		{
			ID:         "fig11",
			Title:      "Daily average free network TX bandwidth per node",
			PaperClaim: "Free TX bandwidth ≥99.85% everywhere: network load far below the 200 Gbps line rate",
			Compute: func(res *Result) (*Artifact, error) {
				h := analysis.DailyHeatmap(res.Store, exporter.MetricHostNetTx, "hostsystem",
					res.Config.Days, netFreeTransform, matcherDC(res))
				a := heatmapArtifact("fig11", "Free network TX bandwidth per node",
					"network not a scheduling constraint", h)
				return a, nil
			},
		},
		{
			ID:         "fig12",
			Title:      "Daily average free network RX bandwidth per node",
			PaperClaim: "Free RX bandwidth ≥99.75% everywhere",
			Compute: func(res *Result) (*Artifact, error) {
				h := analysis.DailyHeatmap(res.Store, exporter.MetricHostNetRx, "hostsystem",
					res.Config.Days, netFreeTransform, matcherDC(res))
				return heatmapArtifact("fig12", "Free network RX bandwidth per node",
					"network not a scheduling constraint", h), nil
			},
		},
		{
			ID:         "fig13",
			Title:      "Daily average free storage resources per node",
			PaperClaim: "Uneven storage use: 18% of hosts >90% free, 7% using >30%",
			Compute: func(res *Result) (*Artifact, error) {
				h := analysis.DailyHeatmap(res.Store, core.MetricHostDiskPct, "hostsystem",
					res.Config.Days, analysis.FreePercent, matcherDC(res))
				a := heatmapArtifact("fig13", "Free storage per node (single DC)",
					"uneven storage utilization", h)
				d := analysis.StorageSummary(h)
				a.Values["frac_above_90_free"] = d.FracAbove90Free
				a.Values["frac_above_30_used"] = d.FracAbove30Used
				return a, nil
			},
		},
		{
			ID:         "fig14a",
			Title:      "CDF of average VM CPU usage ratio",
			PaperClaim: "VMs predominantly overprovisioned: >80% of VMs below the 70% threshold, small optimal band, tiny overutilized tail",
			Compute: func(res *Result) (*Artifact, error) {
				cdf := analysis.VMMeanUsage(res.Store, exporter.MetricVMCPURatio, 0, res.Config.Horizon())
				split := analysis.SplitUtilization(cdf)
				return &Artifact{
					ID: "fig14a", Title: "CDF of VM CPU usage",
					PaperClaim: ">80% of VMs under-utilize CPU",
					Text:       report.UtilizationSplitTable(split) + "\n" + report.CDFCSV(cdf, 21),
					Values: map[string]float64{
						"under": split.Under, "optimal": split.Optimal, "over": split.Over,
						"n": float64(split.N),
					},
				}, nil
			},
		},
		{
			ID:         "fig14b",
			Title:      "CDF of average VM memory usage ratio",
			PaperClaim: "Memory much better aligned: ≈38% under-utilized, ≈10% optimal, majority above 85%",
			Compute: func(res *Result) (*Artifact, error) {
				cdf := analysis.VMMeanUsage(res.Store, exporter.MetricVMMemRatio, 0, res.Config.Horizon())
				split := analysis.SplitUtilization(cdf)
				return &Artifact{
					ID: "fig14b", Title: "CDF of VM memory usage",
					PaperClaim: "memory requests track actual usage far better than CPU",
					Text:       report.UtilizationSplitTable(split) + "\n" + report.CDFCSV(cdf, 21),
					Values: map[string]float64{
						"under": split.Under, "optimal": split.Optimal, "over": split.Over,
						"n": float64(split.N),
					},
				}, nil
			},
		},
		{
			ID:         "fig15a",
			Title:      "Average VM lifetime per flavor, grouped by vCPU class",
			PaperClaim: "Lifetimes span minutes to years, median ≈1 week; no monotone size→lifetime relation",
			Stage:      StageArrivals,
			Compute:    lifetimeExperiment("fig15a", false),
		},
		{
			ID:         "fig15b",
			Title:      "Average VM lifetime per flavor, grouped by RAM class",
			PaperClaim: "Memory-intensive flavors exhibit significant lifetimes (stable long-term deployments)",
			Stage:      StageArrivals,
			Compute:    lifetimeExperiment("fig15b", true),
		},
		{
			ID:         "table1",
			Title:      "VM classification by number of vCPUs",
			PaperClaim: "Small 28,446 · Medium 14,340 · Large 1,831 · Extra Large 738",
			Stage:      StageEpoch,
			Compute: func(res *Result) (*Artifact, error) {
				return classArtifact("table1", "Table 1: classification by vCPUs", res,
					func(f *vmmodel.Flavor) vmmodel.SizeClass { return f.VCPUClass() },
					[]string{"Small (<=4)", "Medium (4<v<=16)", "Large (16<v<=64)", "Extra Large (>64)"}), nil
			},
		},
		{
			ID:         "table2",
			Title:      "VM classification by memory resources",
			PaperClaim: "Small 991 · Medium 41,395 · Large 787 · Extra Large 2,184",
			Stage:      StageEpoch,
			Compute: func(res *Result) (*Artifact, error) {
				return classArtifact("table2", "Table 2: classification by RAM", res,
					func(f *vmmodel.Flavor) vmmodel.SizeClass { return f.RAMClass() },
					[]string{"Small (<=2 GiB)", "Medium (2<r<=64)", "Large (64<r<=128)", "Extra Large (>128)"}), nil
			},
		},
		{
			ID:         "table3",
			Title:      "Comparison of prior work and the SAP Cloud Infrastructure Dataset",
			PaperClaim: "SAP is the only public dataset with VM workloads, lifetimes to years, and 30s-300s sampling",
			Stage:      StageStatic,
			Compute: func(res *Result) (*Artifact, error) {
				return &Artifact{
					ID: "table3", Title: "Table 3: dataset comparison",
					PaperClaim: "unique position of the SAP dataset",
					Text:       report.Table3Text(),
					Values:     map[string]float64{"datasets": float64(len(report.Table3()))},
				}, nil
			},
		},
		{
			ID:         "table4",
			Title:      "Metric details for vROps and OpenStack Compute (Appendix C)",
			PaperClaim: "14 metrics across compute-host and VM subsystems",
			Stage:      StageStatic,
			Compute: func(res *Result) (*Artifact, error) {
				rows := make([][]string, 0, len(exporter.Catalog()))
				for _, c := range exporter.Catalog() {
					rows = append(rows, []string{c.Name, c.Subsystem, c.Resource, c.Description})
				}
				return &Artifact{
					ID: "table4", Title: "Table 4: metric catalog",
					PaperClaim: "the released metric set",
					Text:       report.Table([]string{"metric", "subsystem", "resource", "description"}, rows),
					Values:     map[string]float64{"metrics": float64(len(rows))},
				}, nil
			},
		},
		{
			ID:         "table5",
			Title:      "Data center overview (Appendix D)",
			PaperClaim: "29 DCs; studied region 9 has 1,823 hypervisors and 47,116 VMs",
			Stage:      StageStatic,
			Compute: func(res *Result) (*Artifact, error) {
				rows := make([][]string, 0, len(topology.Table5))
				for _, r := range topology.Table5 {
					rows = append(rows, []string{
						fmt.Sprintf("%d", r.RegionID), r.Datacenter,
						fmt.Sprintf("%d", r.Hypervisors), fmt.Sprintf("%d", r.VMs),
					})
				}
				hv, vms := topology.Totals()
				return &Artifact{
					ID: "table5", Title: "Table 5: data center overview",
					PaperClaim: "platform-wide scale",
					Text:       report.Table([]string{"region", "dc", "hypervisors", "vms"}, rows),
					Values:     map[string]float64{"hypervisors_total": float64(hv), "vms_total": float64(vms)},
				}, nil
			},
		},
	}
}

func matcherDC(res *Result) telemetryMatcher {
	return telemetryMatcher{Name: "datacenter", Value: firstDC(res)}
}

func matcherCluster(bb *topology.BuildingBlock) telemetryMatcher {
	return telemetryMatcher{Name: "cluster", Value: string(bb.ID)}
}

func lifetimeExperiment(id string, byRAM bool) func(res *Result) (*Artifact, error) {
	return func(res *Result) (*Artifact, error) {
		// The paper cuts at 30 instances; scale the cutoff with the
		// simulated population so down-scaled runs keep full coverage.
		minCount := len(res.Lifetimes) / 1500
		if minCount < 1 {
			minCount = 1
		}
		rows := analysis.LifetimeByFlavor(res.Lifetimes, minCount)
		if byRAM {
			sortByRAMClass(rows)
		}
		med := analysis.MedianLifetimeHours(res.Lifetimes)
		var min, max float64
		for i, r := range rows {
			if i == 0 || r.MeanHours < min {
				min = r.MeanHours
			}
			if i == 0 || r.MeanHours > max {
				max = r.MeanHours
			}
		}
		return &Artifact{
			ID: id, Title: "VM lifetime per flavor",
			PaperClaim: "median ≈1 week, range minutes to years",
			Text:       report.LifetimeTable(rows),
			Values: map[string]float64{
				"median_hours":    med,
				"min_flavor_mean": min,
				"max_flavor_mean": max,
				"flavors":         float64(len(rows)),
			},
		}, nil
	}
}

func sortByRAMClass(rows []analysis.FlavorLifetime) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].RAMClass != rows[j].RAMClass {
			return rows[i].RAMClass < rows[j].RAMClass
		}
		return rows[i].Flavor.Name < rows[j].Flavor.Name
	})
}

func classArtifact(id, title string, res *Result, classify func(*vmmodel.Flavor) vmmodel.SizeClass, bounds []string) *Artifact {
	// Classify the population present at the observation epoch, matching
	// the paper's "average of VM classification": churn instances would
	// over-weight short-lived small flavors.
	var epoch []*vmmodel.VM
	for _, vm := range res.VMs {
		if vm.CreatedAt <= 0 {
			epoch = append(epoch, vm)
		}
	}
	counts := analysis.ClassCount(epoch, classify)
	ordered := make([]int, len(vmmodel.SizeClasses))
	values := map[string]float64{}
	for i, c := range vmmodel.SizeClasses {
		ordered[i] = counts[c]
		values[c.String()] = float64(counts[c])
	}
	return &Artifact{
		ID: id, Title: title,
		PaperClaim: "size-class distribution of the VM population",
		Text:       report.ClassTable(title, bounds, ordered),
		Values:     values,
	}
}
