package sapsim

import (
	"math"
	"strings"
	"sync"
	"testing"

	"sapsim/internal/analysis"
	"sapsim/internal/exporter"
	"sapsim/internal/sim"
)

// analysisWeekEffect computes the weekday/weekend CPU demand difference of
// a run's host telemetry.
func analysisWeekEffect(res *Result) analysis.WeekEffect {
	return analysis.WeekdayWeekendEffect(res.Store, exporter.MetricHostCPUUtil, res.Config.Days)
}

// fixture runs one moderately sized 30-day experiment shared by every
// fidelity test and benchmark in this package.
var (
	fixtureOnce sync.Once
	fixtureRes  *Result
	fixtureErr  error
)

func fixtureConfig() Config {
	cfg := DefaultConfig(2024)
	cfg.Scale = 0.04
	cfg.VMs = 1500
	cfg.Days = 30
	cfg.SampleEvery = 15 * sim.Minute
	cfg.VMSampleEvery = 3 * sim.Hour
	return cfg
}

func fixture(tb testing.TB) *Result {
	tb.Helper()
	fixtureOnce.Do(func() {
		fixtureRes, fixtureErr = Run(fixtureConfig())
	})
	if fixtureErr != nil {
		tb.Fatal(fixtureErr)
	}
	return fixtureRes
}

func compute(tb testing.TB, id string) *Artifact {
	tb.Helper()
	exp, ok := ExperimentByID(id)
	if !ok {
		tb.Fatalf("experiment %s not registered", id)
	}
	art, err := exp.Compute(fixture(tb))
	if err != nil {
		tb.Fatalf("%s: %v", id, err)
	}
	return art
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14a", "fig14b", "fig15a", "fig15b",
		"table1", "table2", "table3", "table4", "table5",
	}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, got[i].ID, id)
		}
		if got[i].Title == "" || got[i].PaperClaim == "" {
			t.Errorf("experiment %s missing title or claim", id)
		}
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Error("unknown ID found")
	}
}

func TestAllExperimentsCompute(t *testing.T) {
	res := fixture(t)
	for _, exp := range Experiments() {
		art, err := exp.Compute(res)
		if err != nil {
			t.Errorf("%s: %v", exp.ID, err)
			continue
		}
		if art.Text == "" {
			t.Errorf("%s: empty artifact text", exp.ID)
		}
		if len(art.Values) == 0 {
			t.Errorf("%s: no measured values", exp.ID)
		}
	}
}

// Fig. 5 fidelity: pronounced, persistent node imbalance.
func TestFig5NodeImbalance(t *testing.T) {
	art := compute(t, "fig5")
	if art.Values["columns"] == 0 {
		t.Fatal("empty heatmap")
	}
	if spread := art.Values["spread_pct"]; spread < 15 {
		t.Errorf("free-CPU spread = %.1f pts, want pronounced imbalance (≥15)", spread)
	}
	if most := art.Values["most_free_pct"]; most < 80 {
		t.Errorf("most-free node = %.1f%%, paper shows nodes >90%% free", most)
	}
}

// Fig. 7: intra-BB imbalance exists even inside one building block.
func TestFig7IntraBBImbalance(t *testing.T) {
	art := compute(t, "fig7")
	if art.Values["columns"] < 2 {
		t.Skip("selected BB too small")
	}
	if spread := art.Values["spread_pct"]; spread <= 0 {
		t.Errorf("intra-BB spread = %.2f, want positive", spread)
	}
}

// Fig. 8: ready-time spikes beyond the 30 s threshold.
func TestFig8ReadyTimeSpikes(t *testing.T) {
	art := compute(t, "fig8")
	if art.Values["max_ready_s"] < 30 {
		t.Errorf("max ready time = %.1f s, paper shows spikes ≫30 s", art.Values["max_ready_s"])
	}
	if art.Values["nodes_above_30s"] < 1 {
		t.Error("no node crosses the 30 s baseline")
	}
}

// Fig. 9: low mean contention, maxima in the 10-40%+ band.
func TestFig9ContentionBands(t *testing.T) {
	art := compute(t, "fig9")
	if mean := art.Values["overall_mean_pct"]; mean > 5 {
		t.Errorf("overall mean contention = %.2f%%, paper keeps the mean below 5%%", mean)
	}
	if max := art.Values["max_contention_pct"]; max < 10 {
		t.Errorf("max contention = %.2f%%, paper shows 10-40%%", max)
	}
	if art.Values["days_max_above_10pct"] < 5 {
		t.Errorf("contention above 10%% on only %v days; the paper calls it persistent",
			art.Values["days_max_above_10pct"])
	}
}

// Fig. 10: memory shows a nearly-full subset (bin-packed HANA hosts).
func TestFig10MemoryBimodal(t *testing.T) {
	art := compute(t, "fig10")
	if least := art.Values["least_free_pct"]; least > 40 {
		t.Errorf("least-free node has %.1f%% free memory; paper shows nearly full hosts", least)
	}
	if most := art.Values["most_free_pct"]; most < 60 {
		t.Errorf("most-free node has %.1f%% free memory; paper shows plentiful free hosts", most)
	}
}

// Figs. 11/12: network never matters.
func TestFig11Fig12NetworkIrrelevant(t *testing.T) {
	for _, id := range []string{"fig11", "fig12"} {
		art := compute(t, id)
		if least := art.Values["least_free_pct"]; least < 99.0 {
			t.Errorf("%s: least free bandwidth = %.3f%%, paper reports ≥99.75%%", id, least)
		}
	}
}

// Fig. 13: storage distribution headline numbers.
func TestFig13StorageDistribution(t *testing.T) {
	art := compute(t, "fig13")
	if f := art.Values["frac_above_90_free"]; f < 0.02 || f > 0.6 {
		t.Errorf("hosts >90%% free = %.2f, paper reports 18%%", f)
	}
	if f := art.Values["frac_above_30_used"]; f < 0.01 || f > 0.6 {
		t.Errorf("hosts using >30%% = %.2f, paper reports 7%%", f)
	}
}

// Fig. 14a: the overprovisioning headline (>80% of VMs below 70% CPU).
func TestFig14aCPUOverprovisioned(t *testing.T) {
	art := compute(t, "fig14a")
	if under := art.Values["under"]; under < 0.75 {
		t.Errorf("CPU under-utilized share = %.3f, paper reports >0.80", under)
	}
	if over := art.Values["over"]; over > 0.15 {
		t.Errorf("CPU over-utilized share = %.3f, should be a small tail", over)
	}
}

// Fig. 14b: memory materially better aligned than CPU.
func TestFig14bMemoryBetterAligned(t *testing.T) {
	cpu := compute(t, "fig14a")
	mem := compute(t, "fig14b")
	if mem.Values["under"] >= cpu.Values["under"] {
		t.Errorf("memory under share %.3f should be below CPU's %.3f",
			mem.Values["under"], cpu.Values["under"])
	}
	if mem.Values["over"] < 0.35 {
		t.Errorf("memory over share = %.3f, paper reports ≈0.52", mem.Values["over"])
	}
	if u := mem.Values["under"]; u < 0.25 || u > 0.55 {
		t.Errorf("memory under share = %.3f, paper reports ≈0.38", u)
	}
}

// Fig. 15: lifetime median near one week, wide range, HANA long-lived.
func TestFig15Lifetimes(t *testing.T) {
	art := compute(t, "fig15a")
	week := 168.0
	if med := art.Values["median_hours"]; med < week/4 || med > week*4 {
		t.Errorf("median lifetime = %.0f h, paper reports ≈1 week", med)
	}
	if art.Values["max_flavor_mean"] < 24*300 {
		t.Errorf("longest-lived flavor mean = %.0f h, paper shows multi-year flavors",
			art.Values["max_flavor_mean"])
	}
	if art.Values["min_flavor_mean"] > 24*10 {
		t.Errorf("shortest-lived flavor mean = %.0f h, paper shows ~13 h flavors",
			art.Values["min_flavor_mean"])
	}
	b := compute(t, "fig15b")
	if b.Values["flavors"] != art.Values["flavors"] {
		t.Errorf("15a and 15b flavor counts differ: %v vs %v",
			art.Values["flavors"], b.Values["flavors"])
	}
}

// Tables 1/2: class ordering must match the paper.
func TestTables1And2ClassShares(t *testing.T) {
	t1 := compute(t, "table1")
	if !(t1.Values["Small"] > t1.Values["Medium"] &&
		t1.Values["Medium"] > t1.Values["Large"] &&
		t1.Values["Large"] >= t1.Values["Extra Large"]) {
		t.Errorf("Table 1 ordering violated: %v", t1.Values)
	}
	t2 := compute(t, "table2")
	if t2.Values["Medium"] < t2.Values["Small"]+t2.Values["Large"]+t2.Values["Extra Large"] {
		t.Errorf("Table 2: medium RAM should dominate: %v", t2.Values)
	}
	if t2.Values["Extra Large"] <= t2.Values["Large"] {
		t.Errorf("Table 2: XL (HANA) should exceed Large: %v", t2.Values)
	}
}

func TestTable5Verbatim(t *testing.T) {
	art := compute(t, "table5")
	if art.Values["hypervisors_total"] < 6000 {
		t.Errorf("hypervisors = %v", art.Values["hypervisors_total"])
	}
	if !strings.Contains(art.Text, "1072") || !strings.Contains(art.Text, "34392") {
		t.Error("Table 5 rows missing published values")
	}
}

// Fig. 8 discussion: "less workload and thus less contention on weekends
// and more during the working days" — host CPU demand must dip on
// weekends.
func TestWeekendModulation(t *testing.T) {
	res := fixture(t)
	effect := analysisWeekEffect(res)
	if math.IsNaN(effect.Dip) {
		t.Fatal("no week effect computable")
	}
	if effect.Dip < 0.02 {
		t.Errorf("weekend dip = %.3f, want a visible working-day pattern", effect.Dip)
	}
	if effect.WeekendDays < 8 { // 30 days contain 4+ weekends
		t.Errorf("weekend days = %d", effect.WeekendDays)
	}
}

func TestArtifactValuesFinite(t *testing.T) {
	res := fixture(t)
	for _, exp := range Experiments() {
		art, err := exp.Compute(res)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range art.Values {
			if math.IsInf(v, 0) {
				t.Errorf("%s: value %s is infinite", exp.ID, k)
			}
		}
	}
}
