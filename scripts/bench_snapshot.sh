#!/usr/bin/env bash
# bench_snapshot.sh — capture and compare the repo's benchmark trajectory.
#
# The ROADMAP mandates a BENCH_*.json perf trajectory: one committed snapshot
# per PR so speedups and regressions stay visible across re-anchors. This
# script runs the in-tree bench suites (sim, nova, telemetry, promql,
# scrape ingest, scenario, and the root figure/table + end-to-end cell
# benches) with -benchmem and serializes (ns/op, B/op, allocs/op) per
# benchmark.
#
# Usage:
#   scripts/bench_snapshot.sh snapshot [-o FILE] [-quick] [-full]
#       Run the suites and write a snapshot JSON (default: bench_snapshot.json).
#       -quick runs a reduced hot-path subset (CI smoke); -full additionally
#       runs the domain-metric ablation benches (slow, not part of the
#       perf trajectory by default).
#   scripts/bench_snapshot.sh merge BEFORE.json AFTER.json
#       Emit a committed trajectory point {pr, baseline, current} on stdout.
#   scripts/bench_snapshot.sh compare BENCH_FILE.json
#       Re-run the quick subset and compare against the file's current (or
#       plain) snapshot: warn when any benchmark's ns/op or allocs/op
#       regressed >20%, and FAIL (exit 1) when a curated engine hot-path
#       benchmark (Engine.Schedule*, Scheduler.Schedule, FullCell — the
#       paths the PRs pin with allocation budgets) regressed >35% ns/op.
set -euo pipefail

cd "$(dirname "$0")/.."
command -v jq >/dev/null || { echo "bench_snapshot.sh: jq is required" >&2; exit 1; }

REGRESSION_PCT=20
# Curated hot-path subset: ns/op regressions past HARDFAIL_PCT on these
# fail the compare outright instead of warning. Everything else stays
# warn-only — bench noise on a shared CI box must not block merges, but a
# 35% slide on the engine hot path is never noise.
HARDFAIL_PCT=35
HARDFAIL_RE='^(EngineSchedule|EngineScheduleRunCycle|EngineScheduleRun|SchedulerSchedule|FullCell)$'

# run_suite PKG BENCH_REGEX BENCHTIME OUT_TSV — append parsed results.
run_suite() {
	local pkg=$1 re=$2 bt=$3 out=$4
	echo ">> bench $pkg -bench '$re' -benchtime $bt" >&2
	go test -run '^$' -bench "$re" -benchmem -benchtime "$bt" "$pkg" |
		awk -v pkg="$pkg" '
		/^Benchmark/ {
			name = $1; sub(/-[0-9]+$/, "", name); sub(/^Benchmark/, "", name)
			ns = ""; bop = ""; aop = ""
			for (i = 3; i < NF; i++) {
				if ($(i+1) == "ns/op")     ns  = $i
				if ($(i+1) == "B/op")      bop = $i
				if ($(i+1) == "allocs/op") aop = $i
			}
			if (ns != "") printf "%s\t%s\t%s\t%s\t%s\t%s\n", pkg, name, ns, bop, aop, $2
		}' >>"$out"
}

# tsv_to_json OUT_TSV — snapshot object on stdout.
tsv_to_json() {
	jq -Rn --arg go "$(go env GOVERSION)" --arg host "$(uname -sm)" \
		--arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
		{go: $go, host: $host, date: $date,
		 benchmarks: [inputs | split("\t") |
			{package: .[0], name: .[1],
			 ns_per_op: (.[2] | tonumber),
			 b_per_op: (.[3] | if . == "" then null else tonumber end),
			 allocs_per_op: (.[4] | if . == "" then null else tonumber end),
			 iterations: (.[5] | tonumber)}]}' <"$1"
}

snapshot() {
	local out="bench_snapshot.json" quick=0 full=0
	while [ $# -gt 0 ]; do
		case "$1" in
		-o) out=$2; shift 2 ;;
		-quick) quick=1; shift ;;
		-full) full=1; shift ;;
		*) echo "unknown snapshot flag: $1" >&2; exit 2 ;;
		esac
	done
	local tsv; tsv=$(mktemp)
	if [ "$quick" = 1 ]; then
		run_suite ./internal/sim . 200ms "$tsv"
		run_suite ./internal/nova . 200ms "$tsv"
		run_suite ./internal/scrape 'BenchmarkScrapeIngest$' 200ms "$tsv"
		run_suite . 'BenchmarkFullCell$' 3x "$tsv"
		run_suite . 'BenchmarkSnapshotEncode$|BenchmarkRestore$' 3x "$tsv"
	else
		run_suite ./internal/sim . 1s "$tsv"
		run_suite ./internal/nova . 1s "$tsv"
		run_suite ./internal/telemetry . 1s "$tsv"
		run_suite ./internal/promql . 1s "$tsv"
		run_suite ./internal/scrape 'BenchmarkScrapeIngest$' 1s "$tsv"
		run_suite ./internal/scenario 'BenchmarkSweep$' 3x "$tsv"
		run_suite ./internal/scenario 'BenchmarkWarmVsColdSweep' 3x "$tsv"
		run_suite . 'BenchmarkFigure|BenchmarkTable' 3x "$tsv"
		# FullCell needs more iterations than the other suites: at 5x its
		# ns/op swings ±10% run to run (GC and warm-up dominate); 20x is
		# stable to ~1%, which matters because CI hard-fails on this one.
		run_suite . 'BenchmarkFullCell$' 20x "$tsv"
		run_suite . 'BenchmarkSnapshotEncode$|BenchmarkRestore$' 5x "$tsv"
		if [ "$full" = 1 ]; then
			run_suite . 'BenchmarkAblation' 1x "$tsv"
		fi
	fi
	tsv_to_json "$tsv" >"$out"
	rm -f "$tsv"
	echo "wrote $out ($(jq '.benchmarks | length' "$out") benchmarks)" >&2
}

merge() {
	[ $# -eq 2 ] || { echo "usage: bench_snapshot.sh merge BEFORE.json AFTER.json" >&2; exit 2; }
	jq -n --arg pr "${BENCH_PR:-PR?}" --slurpfile before "$1" --slurpfile after "$2" \
		'{pr: $pr, regression_warn_pct: 20, baseline: $before[0], current: $after[0]}'
}

compare() {
	[ $# -eq 1 ] || { echo "usage: bench_snapshot.sh compare BENCH_FILE.json" >&2; exit 2; }
	local committed=$1 tmp
	tmp=$(mktemp -d)
	snapshot -o "$tmp/now.json" -quick
	# Accept either a plain snapshot or a {baseline, current} trajectory point.
	jq 'if has("current") then .current else . end' "$committed" >"$tmp/ref.json"
	# Emit one SEVERITY<TAB>message line per regression: ns/op for every
	# benchmark (FAIL past HARDFAIL_PCT on the curated subset, WARN past
	# REGRESSION_PCT otherwise), allocs/op (warn-only — allocation counts
	# are deterministic, so any growth is a real code change, but one the
	# per-package alloc-pin tests already gate where it matters).
	jq -r --slurpfile ref "$tmp/ref.json" --argjson thr "$REGRESSION_PCT" \
		--argjson hardthr "$HARDFAIL_PCT" --arg hard "$HARDFAIL_RE" '
		($ref[0].benchmarks | map({key: (.package + " " + .name), value: .}) | from_entries) as $base |
		.benchmarks[] | (.package + " " + .name) as $k |
		select($base[$k] != null) | $base[$k] as $b |
		(
			select(($b.ns_per_op // 0) > 0) |
			(100 * (.ns_per_op / $b.ns_per_op - 1)) as $d |
			select($d > $thr) |
			(if (.name | test($hard)) and $d > $hardthr then "FAIL" else "WARN" end) +
			"\tbenchmark regression: \($k) \($b.ns_per_op) -> \(.ns_per_op) ns/op (+\($d | floor)%)"
		),
		(
			select(($b.allocs_per_op // -1) >= 0 and (.allocs_per_op // -1) >= 0) |
			if $b.allocs_per_op == 0 and .allocs_per_op > 0 then
				"WARN\talloc regression: \($k) 0 -> \(.allocs_per_op) allocs/op (was allocation-free)"
			elif $b.allocs_per_op > 0 and (100 * (.allocs_per_op / $b.allocs_per_op - 1)) > $thr then
				"WARN\talloc regression: \($k) \($b.allocs_per_op) -> \(.allocs_per_op) allocs/op (+\((100 * (.allocs_per_op / $b.allocs_per_op - 1)) | floor)%)"
			else empty end
		)
	' "$tmp/now.json" >"$tmp/findings.txt"
	local fails warns
	fails=$(grep -c '^FAIL' "$tmp/findings.txt" || true)
	warns=$(grep -c '^WARN' "$tmp/findings.txt" || true)
	while IFS=$'\t' read -r sev msg; do
		[ -n "$sev" ] || continue
		if [ "$sev" = FAIL ]; then
			echo "::error::$msg"
		else
			echo "::warning::$msg"
		fi
	done <"$tmp/findings.txt"
	rm -rf "$tmp"
	if [ "$fails" -gt 0 ]; then
		echo "bench compare: $fails hot-path benchmark(s) regressed >${HARDFAIL_PCT}% ns/op vs $committed — failing" >&2
		return 1
	fi
	if [ "$warns" -gt 0 ]; then
		echo "bench compare: $warns regression(s) >${REGRESSION_PCT}% vs $committed (warning only)" >&2
	else
		echo "bench compare: no regression >${REGRESSION_PCT}% (ns/op or allocs/op) vs $committed" >&2
	fi
}

case "${1:-}" in
snapshot) shift; snapshot "$@" ;;
merge) shift; merge "$@" ;;
compare) shift; compare "$@" ;;
*) echo "usage: bench_snapshot.sh {snapshot|merge|compare} ..." >&2; exit 2 ;;
esac
