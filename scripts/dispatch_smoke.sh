#!/usr/bin/env bash
# Dispatcher smoke: start dispatchd + 2 simworkers on localhost, kill one
# worker mid-cell, and assert the lease re-book completes the sweep with a
# merged report. Then export the finished sweep as a report bundle with
# `sweep -bundle` and re-verify every bundled artifact body's SHA-256
# against the journal's digests. Exercises the real binaries over the real
# wire protocol — the deterministic in-process equivalent lives in
# internal/dispatch tests.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir" ./cmd/dispatchd ./cmd/simworker ./cmd/analyze
# Built separately: `sweep` would collide with the journal dir name below.
go build -o "$workdir/sweepcli" ./cmd/sweep

addr="127.0.0.1:${DISPATCH_SMOKE_PORT:-19199}"
worker_metrics="127.0.0.1:${DISPATCH_SMOKE_METRICS_PORT:-19198}"
journal="$workdir/sweep"

# Cells sized to run a few seconds each, so the kill lands mid-cell.
"$workdir/dispatchd" -dir "$journal" -addr "$addr" \
  -scale 0.08 -vms 2800 -days 8 -sample 10m \
  -scenarios baseline,host-failures -seeds 7,11 \
  -lease 3s -checkpoint 6h -timeout 10m \
  >"$workdir/dispatchd.out" 2>"$workdir/dispatchd.err" &
dispatchd_pid=$!

sleep 1
"$workdir/simworker" -dispatcher "http://$addr" -id victim -heartbeat 300ms -poll 200ms \
  >/dev/null 2>"$workdir/victim.err" &
victim_pid=$!
"$workdir/simworker" -dispatcher "http://$addr" -id survivor -heartbeat 300ms -poll 200ms \
  -metrics "$worker_metrics" \
  >/dev/null 2>"$workdir/survivor.err" &
survivor_pid=$!

# Kill the victim once the dispatcher has journaled a snapshot from it —
# guaranteed mid-cell, with warm-resumable state already in the store.
killed=""
for _ in $(seq 1 150); do
  if grep -Eq 'snapshot at .* from victim' "$workdir/dispatchd.err" 2>/dev/null; then
    kill -9 "$victim_pid" 2>/dev/null || true
    killed=yes
    echo "smoke: killed victim worker mid-cell (snapshot journaled)"
    break
  fi
  sleep 0.2
done
[ -n "$killed" ] || { echo "smoke: victim never got a snapshot journaled" >&2; exit 1; }

# Mid-sweep fleet observability: scrape dispatchd's and the survivor's
# /metrics endpoints through the in-tree scrape/promql stack and assert
# queue-depth conservation — every cell of the 2x2 matrix is in exactly one
# state, whatever the re-book races are doing right now.
depth=$("$workdir/analyze" \
    -scrape "http://$addr/metrics,http://$worker_metrics/metrics" \
    -query 'sum(dispatch_queue_jobs)' | tail -n 1)
[ "$depth" = "4" ] ||
  { echo "smoke: mid-sweep sum(dispatch_queue_jobs) = $depth, want 4" >&2; exit 1; }
capacity=$("$workdir/analyze" \
    -scrape "http://$worker_metrics/metrics" \
    -query 'sum(worker_capacity)' | tail -n 1)
[ "$capacity" = "1" ] ||
  { echo "smoke: survivor worker_capacity = $capacity, want 1" >&2; exit 1; }
echo "smoke: mid-sweep metrics scrape OK (queue depth conserved at 4 cells)"

# The survivor must drain the sweep, including the re-booked cell.
if ! wait "$dispatchd_pid"; then
  echo "smoke: dispatchd failed" >&2
  cat "$workdir/dispatchd.err" >&2
  exit 1
fi
wait "$survivor_pid" || { echo "smoke: survivor failed" >&2; cat "$workdir/survivor.err" >&2; exit 1; }

grep -q '"attempt":2' "$journal/journal.jsonl" ||
  { echo "smoke: no lease re-book recorded in the journal" >&2; exit 1; }
grep -q 'booked by survivor (attempt 2)' "$workdir/dispatchd.err" ||
  { echo "smoke: the re-booked cell was not picked up by the survivor" >&2; exit 1; }
grep -q '"t":"snapshot"' "$journal/journal.jsonl" ||
  { echo "smoke: no snapshot pointer recorded in the journal" >&2; exit 1; }
grep -q 'resuming from snapshot' "$workdir/survivor.err" ||
  { echo "smoke: the re-booked cell restarted cold instead of warm-resuming from the victim's snapshot" >&2; exit 1; }
test -s "$journal/report.txt" || { echo "smoke: no merged report written" >&2; exit 1; }
grep -q 'host-failures' "$journal/report.txt" ||
  { echo "smoke: merged report is missing scenarios" >&2; exit 1; }

echo "smoke: sweep completed after worker kill + lease re-book + warm resume"
echo "smoke: journaled checkpoints: $(grep -c '"t":"checkpoint"' "$journal/journal.jsonl" || true)"
echo "smoke: journaled snapshots: $(grep -c '"t":"snapshot"' "$journal/journal.jsonl" || true)"

# The workers uploaded every artifact body into the journal dir's CAS;
# materialize the bundle from the finished journal and re-verify every
# body's recomputed SHA-256 against the digests the journal recorded.
bundle="$workdir/bundle"
"$workdir/sweepcli" -resume "$journal" -bundle "$bundle" \
  >"$workdir/bundle.out" 2>"$workdir/bundle.err" ||
  { echo "smoke: bundle export failed" >&2; cat "$workdir/bundle.err" >&2; exit 1; }

test -s "$bundle/index.html" || { echo "smoke: bundle has no index" >&2; exit 1; }
test -s "$bundle/scenarios/host-failures/report.txt" ||
  { echo "smoke: bundle is missing per-scenario reports" >&2; exit 1; }

# 2 scenarios x 2 seeds x 18 artifacts = 72 bundled bodies.
bodies=$(wc -l < "$bundle/SHA256SUMS")
[ "$bodies" -eq 72 ] ||
  { echo "smoke: bundle lists $bodies bodies, want 72" >&2; exit 1; }
(cd "$bundle" && sha256sum --check --quiet SHA256SUMS) ||
  { echo "smoke: a bundled artifact's recomputed SHA-256 differs from the journal digest" >&2; exit 1; }

# Dedup + reclamation: after the drain (which reclaims every cell's
# snapshot blob) and the resume's orphan GC, the CAS must hold exactly one
# blob per distinct bundled digest — and strictly fewer blobs than bundled
# bodies (the static tables are identical across all four cells).
distinct=$(cut -d' ' -f1 "$bundle/SHA256SUMS" | sort -u | wc -l)
blobs=$(find "$journal/cas" -type f | wc -l)
[ "$blobs" -eq "$distinct" ] ||
  { echo "smoke: CAS holds $blobs blobs, want $distinct (one per distinct digest; snapshot blobs must be reclaimed)" >&2; exit 1; }
[ "$blobs" -lt "$bodies" ] ||
  { echo "smoke: no dedup: $blobs blobs for $bodies bodies" >&2; exit 1; }

echo "smoke: bundle verified ($bodies bodies, $blobs distinct blobs, all SHA-256 match the journal)"
