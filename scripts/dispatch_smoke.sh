#!/usr/bin/env bash
# Dispatcher smoke: start dispatchd + 2 simworkers on localhost, kill one
# worker mid-cell, and assert the lease re-book completes the sweep with a
# merged report. A fleet flight recorder (`analyze -record`) polls every
# /metrics endpoint throughout and its dataset must replay into queue and
# utilization timelines afterwards. Then export the finished sweep as a
# report bundle with `sweep -bundle` plus a Chrome trace with `-trace`,
# re-verify every bundled artifact body's SHA-256 against the journal's
# digests, and assert the trace's span tree covers every cell's
# queued→done lifecycle across the crash. Exercises the real binaries over
# the real wire protocol — the deterministic in-process equivalent lives
# in internal/dispatch tests.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir" ./cmd/dispatchd ./cmd/simworker ./cmd/analyze
# Built separately: `sweep` would collide with the journal dir name below.
go build -o "$workdir/sweepcli" ./cmd/sweep

addr="127.0.0.1:${DISPATCH_SMOKE_PORT:-19199}"
worker_metrics="127.0.0.1:${DISPATCH_SMOKE_METRICS_PORT:-19198}"
journal="$workdir/sweep"

# Cells sized to run a few seconds each, so the kill lands mid-cell.
"$workdir/dispatchd" -dir "$journal" -addr "$addr" \
  -scale 0.08 -vms 2800 -days 8 -sample 10m \
  -scenarios baseline,host-failures -seeds 7,11 \
  -lease 3s -checkpoint 6h -timeout 10m \
  >"$workdir/dispatchd.out" 2>"$workdir/dispatchd.err" &
dispatchd_pid=$!

sleep 1
"$workdir/simworker" -dispatcher "http://$addr" -id victim -heartbeat 300ms -poll 200ms \
  >/dev/null 2>"$workdir/victim.err" &
victim_pid=$!
"$workdir/simworker" -dispatcher "http://$addr" -id survivor -heartbeat 300ms -poll 200ms \
  -metrics "$worker_metrics" \
  >/dev/null 2>"$workdir/survivor.err" &
survivor_pid=$!

# Fleet flight recorder: poll both /metrics endpoints for the whole sweep,
# appending every sample to an on-disk dataset that survives whatever the
# sweep (or the recorder) does next.
fleet="$workdir/fleet"
"$workdir/analyze" -record "$fleet" \
  -scrape "http://$addr/metrics,http://$worker_metrics/metrics" -every 300ms \
  >"$workdir/recorder.out" 2>"$workdir/recorder.err" &
recorder_pid=$!

# Kill the victim once the dispatcher has journaled a snapshot from it —
# guaranteed mid-cell, with warm-resumable state already in the store.
killed=""
for _ in $(seq 1 150); do
  if grep -Eq 'snapshot at .* from victim' "$workdir/dispatchd.err" 2>/dev/null; then
    kill -9 "$victim_pid" 2>/dev/null || true
    killed=yes
    echo "smoke: killed victim worker mid-cell (snapshot journaled)"
    break
  fi
  sleep 0.2
done
[ -n "$killed" ] || { echo "smoke: victim never got a snapshot journaled" >&2; exit 1; }

# Mid-sweep fleet observability: scrape dispatchd's and the survivor's
# /metrics endpoints through the in-tree scrape/promql stack and assert
# queue-depth conservation — every cell of the 2x2 matrix is in exactly one
# state, whatever the re-book races are doing right now.
depth=$("$workdir/analyze" \
    -scrape "http://$addr/metrics,http://$worker_metrics/metrics" \
    -query 'sum(dispatch_queue_jobs)' | tail -n 1)
[ "$depth" = "4" ] ||
  { echo "smoke: mid-sweep sum(dispatch_queue_jobs) = $depth, want 4" >&2; exit 1; }
capacity=$("$workdir/analyze" \
    -scrape "http://$worker_metrics/metrics" \
    -query 'sum(worker_capacity)' | tail -n 1)
[ "$capacity" = "1" ] ||
  { echo "smoke: survivor worker_capacity = $capacity, want 1" >&2; exit 1; }
echo "smoke: mid-sweep metrics scrape OK (queue depth conserved at 4 cells)"

# The survivor must drain the sweep, including the re-booked cell.
if ! wait "$dispatchd_pid"; then
  echo "smoke: dispatchd failed" >&2
  cat "$workdir/dispatchd.err" >&2
  exit 1
fi
wait "$survivor_pid" || { echo "smoke: survivor failed" >&2; cat "$workdir/survivor.err" >&2; exit 1; }

# Stop the recorder and replay its dataset: the recording must be
# non-empty, reloadable, and must render the sweep's fleet timelines.
kill -INT "$recorder_pid" 2>/dev/null || true
wait "$recorder_pid" || { echo "smoke: recorder failed" >&2; cat "$workdir/recorder.err" >&2; exit 1; }
rows=$(($(wc -l < "$fleet/fleet.csv") - 1))
[ "$rows" -gt 0 ] ||
  { echo "smoke: flight recorder dataset is empty" >&2; exit 1; }
"$workdir/analyze" -fleet "$fleet" >"$workdir/fleet.out" ||
  { echo "smoke: fleet timeline replay failed" >&2; exit 1; }
grep -q 'queue depth by state' "$workdir/fleet.out" ||
  { echo "smoke: fleet replay is missing the queue-depth timeline" >&2; exit 1; }
grep -q 'worker utilization' "$workdir/fleet.out" ||
  { echo "smoke: fleet replay is missing the worker-utilization timeline" >&2; exit 1; }
echo "smoke: flight recorder captured $rows samples across the sweep"

grep -q '"attempt":2' "$journal/journal.jsonl" ||
  { echo "smoke: no lease re-book recorded in the journal" >&2; exit 1; }
grep -q 'booked by survivor (attempt 2)' "$workdir/dispatchd.err" ||
  { echo "smoke: the re-booked cell was not picked up by the survivor" >&2; exit 1; }
grep -q '"t":"snapshot"' "$journal/journal.jsonl" ||
  { echo "smoke: no snapshot pointer recorded in the journal" >&2; exit 1; }
grep -q 'resuming from snapshot' "$workdir/survivor.err" ||
  { echo "smoke: the re-booked cell restarted cold instead of warm-resuming from the victim's snapshot" >&2; exit 1; }
test -s "$journal/report.txt" || { echo "smoke: no merged report written" >&2; exit 1; }
grep -q 'host-failures' "$journal/report.txt" ||
  { echo "smoke: merged report is missing scenarios" >&2; exit 1; }

echo "smoke: sweep completed after worker kill + lease re-book + warm resume"
echo "smoke: journaled checkpoints: $(grep -c '"t":"checkpoint"' "$journal/journal.jsonl" || true)"
echo "smoke: journaled snapshots: $(grep -c '"t":"snapshot"' "$journal/journal.jsonl" || true)"

# The workers uploaded every artifact body into the journal dir's CAS;
# materialize the bundle from the finished journal and re-verify every
# body's recomputed SHA-256 against the digests the journal recorded.
bundle="$workdir/bundle"
trace="$workdir/trace.json"
engprof="$workdir/engprof"
"$workdir/sweepcli" -resume "$journal" -bundle "$bundle" -trace "$trace" -engprof "$engprof" \
  >"$workdir/bundle.out" 2>"$workdir/bundle.err" ||
  { echo "smoke: bundle export failed" >&2; cat "$workdir/bundle.err" >&2; exit 1; }

# Engine self-profiles: every completed cell shipped one into the CAS, the
# pointers survived the worker kill, the re-book, and the resume, and the
# export must cover the full 2x2 matrix — including the re-booked cell.
grep -q '"t":"profile"' "$journal/journal.jsonl" ||
  { echo "smoke: no profile pointer recorded in the journal" >&2; exit 1; }
profiles=$(find "$engprof" -name '*.engprof.json' | wc -l)
[ "$profiles" -eq 4 ] ||
  { echo "smoke: exported $profiles engine profiles, want 4 (one per cell)" >&2; exit 1; }
"$workdir/analyze" -engprof "$engprof" -critpath "$trace" >"$workdir/engprof.out" ||
  { echo "smoke: engine-profile analysis failed" >&2; exit 1; }
grep -q 'engine profile .*: 4 cells' "$workdir/engprof.out" ||
  { echo "smoke: engprof report did not aggregate all 4 cells" >&2; exit 1; }
grep -q 'per-phase attribution' "$workdir/engprof.out" ||
  { echo "smoke: engprof report is missing the per-phase attribution table" >&2; exit 1; }
grep -q 'sample/hosts' "$workdir/engprof.out" ||
  { echo "smoke: engprof report has no host-sampling phase row" >&2; exit 1; }
grep -q 'stragglers' "$workdir/engprof.out" ||
  { echo "smoke: engprof report is missing the straggler table" >&2; exit 1; }
echo "smoke: engine profiles exported and aggregated (4 cells, per-phase attribution across kill+resume)"

# The exported trace must reconstruct the full cell lifecycle from the
# journal: one root span per cell of the 2x2 matrix, exactly one attempt
# span per booking the journal recorded (including the victim's), and the
# worker-shipped engine-phase spans merged in.
test -s "$trace" || { echo "smoke: no trace exported" >&2; exit 1; }
cells=$(grep -o '"name":"cell"' "$trace" | wc -l)
[ "$cells" -eq 4 ] ||
  { echo "smoke: trace has $cells cell root spans, want 4" >&2; exit 1; }
attempts=$(grep -o '"name":"attempt"' "$trace" | wc -l)
booked=$(grep -c '"state":"booked"' "$journal/journal.jsonl")
[ "$attempts" -eq "$booked" ] ||
  { echo "smoke: trace has $attempts attempt spans but the journal recorded $booked bookings" >&2; exit 1; }
runs=$(grep -o '"name":"run"' "$trace" | wc -l)
[ "$runs" -gt 0 ] ||
  { echo "smoke: trace has no worker-shipped engine run spans" >&2; exit 1; }
"$workdir/analyze" -critpath "$trace" >"$workdir/critpath.out" ||
  { echo "smoke: critical-path analysis failed" >&2; exit 1; }
grep -q 'critical path:' "$workdir/critpath.out" ||
  { echo "smoke: critical-path report is incomplete" >&2; exit 1; }
echo "smoke: trace verified ($cells cells, $attempts attempts for $booked bookings, $runs run spans)"

test -s "$bundle/index.html" || { echo "smoke: bundle has no index" >&2; exit 1; }
test -s "$bundle/scenarios/host-failures/report.txt" ||
  { echo "smoke: bundle is missing per-scenario reports" >&2; exit 1; }

# 2 scenarios x 2 seeds x 18 artifacts = 72 bundled bodies.
bodies=$(wc -l < "$bundle/SHA256SUMS")
[ "$bodies" -eq 72 ] ||
  { echo "smoke: bundle lists $bodies bodies, want 72" >&2; exit 1; }
(cd "$bundle" && sha256sum --check --quiet SHA256SUMS) ||
  { echo "smoke: a bundled artifact's recomputed SHA-256 differs from the journal digest" >&2; exit 1; }

# Dedup + reclamation: after the drain (which reclaims every cell's
# snapshot blob) and the resume's orphan GC, the CAS must hold exactly one
# blob per distinct bundled digest plus one surviving profile blob per cell
# (profiles outlive completion by design) — and strictly fewer artifact
# blobs than bundled bodies (the static tables are identical across all
# four cells).
distinct=$(cut -d' ' -f1 "$bundle/SHA256SUMS" | sort -u | wc -l)
blobs=$(find "$journal/cas" -type f | wc -l)
[ "$blobs" -eq $((distinct + 4)) ] ||
  { echo "smoke: CAS holds $blobs blobs, want $distinct artifact + 4 profile blobs (snapshot blobs must be reclaimed)" >&2; exit 1; }
[ "$distinct" -lt "$bodies" ] ||
  { echo "smoke: no dedup: $distinct distinct blobs for $bodies bodies" >&2; exit 1; }

echo "smoke: bundle verified ($bodies bodies, $distinct distinct artifact blobs + 4 profile blobs, all SHA-256 match the journal)"
