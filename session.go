package sapsim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"sapsim/internal/core"
	"sapsim/internal/engprof"
	"sapsim/internal/sim"
)

// SessionEvent is the interface satisfied by every typed event a Session
// delivers to its observers: Progress, Placement, Migration, ArtifactReady,
// Checkpoint, and Error.
type SessionEvent interface{ sessionEvent() }

// Progress reports the run's heartbeat, emitted once per host-telemetry
// tick (Config.SampleEvery). Consecutive Progress events coalesce in the
// delivery queue: a slow observer sees the freshest state, never a backlog.
type Progress struct {
	Now, Horizon sim.Time
	// FiredEvents counts discrete-engine events executed so far.
	FiredEvents uint64
	// LiveVMs counts VMs resident in the fleet right now.
	LiveVMs int
}

// Fraction reports run completion in [0, 1].
func (p Progress) Fraction() float64 {
	if p.Horizon <= 0 {
		return 1
	}
	return float64(p.Now) / float64(p.Horizon)
}

// Placement reports one in-window scheduling outcome (epoch-population
// placements at t <= 0 are not streamed, matching the run's event log).
type Placement struct {
	At         sim.Time
	VM, Flavor string
	// Node is the landing node, empty when placement failed.
	Node string
	// Failed marks a NoValidHost outcome; Reason carries the error text.
	Failed bool
	Reason string
}

// Migration reports one move between hosts: DRS intra-BB rebalancing,
// cross-BB rebalancing, or a scenario-driven evacuation off a failed or
// draining host.
type Migration struct {
	At           sim.Time
	VM, From, To string
	// Kind is "drs", "cross-bb", or "evacuation" (core.MigrationKind).
	Kind string
}

// ArtifactReady delivers a finished experiment artifact. With incremental
// artifacts enabled, experiments whose inputs are final before the horizon
// (tables 1-5, fig15) are emitted mid-run as soon as they stabilize; the
// rest follow at completion.
type ArtifactReady struct {
	At       sim.Time
	Artifact *Artifact
}

// Checkpoint is a consistent snapshot of the run's counters, emitted at the
// WithCheckpointEvery cadence and retrievable via Session.LastCheckpoint.
// It is the state a supervisor persists to resume accounting after a crash.
type Checkpoint struct {
	At          sim.Time
	FiredEvents uint64
	LiveVMs     int
	Scheduled   int
	Failed      int
	Retries     int
	Resizes     int
	// Migrations counts every host-to-host move so far — DRS, cross-BB,
	// and evacuations — matching the session's Migration event stream.
	Migrations int
}

// Error reports a run abort (context cancellation, engine failure) or a
// non-fatal artifact computation failure.
type Error struct {
	At  sim.Time
	Err error
}

// SessionPhase reports the wall-clock cost of one engine phase: "build"
// (simulation assembly), "run" (an uninterrupted AdvanceTo segment), or
// "snapshot-capture" (engine state capture at a snapshot boundary). It is
// the session's hook for external tracing — a supervisor turns these into
// spans attributed to the cell's attempt. Phase events are only measured
// and emitted when observers are registered; an observer-less run pays no
// clock reads on the driving loop.
type SessionPhase struct {
	Name string
	// Start and End bound the phase in wall-clock time.
	Start, End time.Time
	// FromSim and ToSim bound the phase in simulated time (equal for
	// phases that do not advance the clock, like build).
	FromSim, ToSim sim.Time
}

func (Progress) sessionEvent()      {}
func (Placement) sessionEvent()     {}
func (Migration) sessionEvent()     {}
func (ArtifactReady) sessionEvent() {}
func (Checkpoint) sessionEvent()    {}
func (Error) sessionEvent()         {}
func (SessionPhase) sessionEvent()  {}

// Observer receives session events. Observers run on a dedicated dispatch
// goroutine, never on the simulation hot loop: a slow observer delays its
// own deliveries but can never stall or deadlock the engine.
type Observer interface {
	OnSessionEvent(SessionEvent)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(SessionEvent)

// OnSessionEvent implements Observer.
func (f ObserverFunc) OnSessionEvent(ev SessionEvent) { f(ev) }

// LogDailyProgress returns an Observer that writes one "<prefix>: day X/N"
// line to w per completed simulated day — the standard -progress output of
// the CLIs. Like any observer it runs on the dispatch goroutine, so the
// writes never slow the simulation.
func LogDailyProgress(w io.Writer, prefix string) Observer {
	lastDay := -1
	return ObserverFunc(func(ev SessionEvent) {
		p, ok := ev.(Progress)
		if !ok {
			return
		}
		day := int(p.Now.Days())
		if day <= lastDay {
			return
		}
		lastDay = day
		fmt.Fprintf(w, "%s: day %d/%d (%d live VMs, %d events)\n",
			prefix, day, int(p.Horizon.Days()), p.LiveVMs, p.FiredEvents)
	})
}

// SessionState is the lifecycle phase of a Session.
type SessionState int

const (
	// StateNew is a configured session before Build.
	StateNew SessionState = iota
	// StateBuilt has the simulation assembled (topology, epoch population,
	// samplers) and positioned at time zero.
	StateBuilt
	// StateRunning has Start called; the clock advances via Step or
	// RunToCompletion.
	StateRunning
	// StateDone reached the horizon; Result is available.
	StateDone
	// StateCanceled was unwound by its context before the horizon.
	StateCanceled
	// StateFailed aborted on an internal error.
	StateFailed
)

// String renders the state for logs and errors.
func (s SessionState) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateBuilt:
		return "built"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateCanceled:
		return "canceled"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

type sessionOptions struct {
	ctx             context.Context
	observers       []Observer
	policyNames     []string
	checkpointEvery sim.Time
	snapshotEvery   sim.Time
	incremental     bool
	incrementalIDs  map[string]bool
}

// Option configures a Session at construction.
type Option func(*sessionOptions) error

// WithContext ties the run to ctx: cancellation unwinds the simulation
// cleanly from any tick — within one engine event — and the driving call
// (Step or RunToCompletion) returns ctx's error.
func WithContext(ctx context.Context) Option {
	return func(o *sessionOptions) error {
		if ctx == nil {
			return errors.New("sapsim: WithContext(nil)")
		}
		o.ctx = ctx
		return nil
	}
}

// WithObserver registers an observer for the session's event stream.
// Multiple observers are invoked in registration order.
func WithObserver(obs Observer) Option {
	return func(o *sessionOptions) error {
		if obs == nil {
			return errors.New("sapsim: WithObserver(nil)")
		}
		o.observers = append(o.observers, obs)
		return nil
	}
}

// WithObserverFunc is WithObserver for a bare function.
func WithObserverFunc(fn func(SessionEvent)) Option {
	return func(o *sessionOptions) error {
		if fn == nil {
			return errors.New("sapsim: WithObserverFunc(nil)")
		}
		o.observers = append(o.observers, ObserverFunc(fn))
		return nil
	}
}

// WithPolicy applies a registered placement policy (see RegisterPolicy) to
// the session's config copy. Unknown names fail NewSession.
func WithPolicy(name string) Option {
	return func(o *sessionOptions) error {
		// Resolution is deferred to NewSession where the config lives;
		// validate eagerly so the error points at the right option.
		if _, ok := PolicyByName(name); !ok {
			return fmt.Errorf("sapsim: unknown policy %q", name)
		}
		o.policyNames = append(o.policyNames, name)
		return nil
	}
}

// WithCheckpointEvery emits a Checkpoint event every interval of simulated
// time (in addition to the per-tick Progress stream).
func WithCheckpointEvery(every sim.Time) Option {
	return func(o *sessionOptions) error {
		if every <= 0 {
			return errors.New("sapsim: non-positive checkpoint interval")
		}
		o.checkpointEvery = every
		return nil
	}
}

// WithIncrementalArtifacts enables ArtifactReady events: experiments whose
// inputs are final before the horizon (StageStatic, StageEpoch,
// StageArrivals) emit as soon as they stabilize, the rest at completion.
// With no ids, all experiments stream; otherwise only the named ones.
func WithIncrementalArtifacts(ids ...string) Option {
	return func(o *sessionOptions) error {
		o.incremental = true
		if len(ids) > 0 {
			if o.incrementalIDs == nil {
				o.incrementalIDs = make(map[string]bool, len(ids))
			}
			for _, id := range ids {
				if _, ok := ExperimentByID(id); !ok {
					return fmt.Errorf("sapsim: unknown experiment %q", id)
				}
				o.incrementalIDs[id] = true
			}
		}
		return nil
	}
}

// Session is the phased, observable, cancellable form of a run. The
// lifecycle is Build → Start → Step(n)/RunToCompletion → Result, with Run
// remaining as the blocking one-call wrapper. Sessions are driven from one
// goroutine; event delivery to observers is concurrent but never blocks the
// simulation.
//
//	s, err := sapsim.NewSession(cfg,
//	    sapsim.WithContext(ctx),
//	    sapsim.WithObserverFunc(onEvent))
//	if err != nil { ... }
//	defer s.Close()
//	if err := s.RunToCompletion(); err != nil { ... }
//	res, err := s.Result()
type Session struct {
	cfg   Config
	opts  sessionOptions
	state SessionState
	err   error

	sim  *core.Simulation
	disp *dispatcher

	// name labels a branch session produced by Fork.
	name string
	// resume, when set, makes Build restore this snapshot instead of
	// assembling at t=0.
	resume *Snapshot

	lastCheckpoint Checkpoint
	hasCheckpoint  bool
	nextCheckpoint sim.Time

	lastSnapshot *Snapshot
	nextSnapshot sim.Time
	// snapEvery is the effective snapshot interval: it starts at the
	// configured WithSnapshotEvery cadence and stretches (see
	// stretchSnapshotEvery) when the profiler shows capture cost blowing
	// the overhead budget.
	snapEvery sim.Time

	// migrations counts every migration hook firing (all kinds); written
	// and read on the driving goroutine only.
	migrations int

	// pending holds incremental experiments not yet emitted, keyed by
	// effective stage; each stage's list is consumed exactly once, so the
	// per-tick readiness check stays O(1) after a stage drains.
	pending map[Stage][]Experiment
}

// NewSession validates cfg, applies options and any selected policies to a
// private copy, and returns a session in StateNew. The simulation itself is
// assembled by Build (or lazily by Start).
func NewSession(cfg Config, opts ...Option) (*Session, error) {
	var o sessionOptions
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	for _, name := range o.policyNames {
		p, ok := PolicyByName(name)
		if !ok {
			return nil, fmt.Errorf("sapsim: unknown policy %q", name)
		}
		p.Apply(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Session{cfg: cfg, opts: o}, nil
}

// Config returns the session's effective configuration (base config with
// policies applied).
func (s *Session) Config() Config { return s.cfg }

// State reports the lifecycle phase.
func (s *Session) State() SessionState { return s.state }

// Err reports the terminal error for a canceled or failed session.
func (s *Session) Err() error { return s.err }

// Now reports the current simulated time (zero before Build).
func (s *Session) Now() sim.Time {
	if s.sim == nil {
		return 0
	}
	return s.sim.Now()
}

// Horizon reports the end of the observation window.
func (s *Session) Horizon() sim.Time { return s.cfg.Horizon() }

// LastCheckpoint returns the most recent checkpoint snapshot, if any.
func (s *Session) LastCheckpoint() (Checkpoint, bool) {
	return s.lastCheckpoint, s.hasCheckpoint
}

// Build assembles the simulation: topology, scheduler, epoch population,
// samplers, rebalancers, and scenario injectors, leaving the clock at zero.
// Build is idempotent; Start calls it implicitly.
func (s *Session) Build() error {
	switch s.state {
	case StateNew:
	case StateBuilt, StateRunning:
		return nil
	default:
		return fmt.Errorf("sapsim: Build on %s session", s.state)
	}
	if len(s.opts.observers) > 0 {
		s.disp = newDispatcher(s.opts.observers)
	}
	var buildStart time.Time
	if s.disp != nil {
		buildStart = time.Now()
	}
	var hooks core.Hooks
	if s.disp != nil {
		hooks.OnPlacement = func(now sim.Time, vm, flavor, node, reason string) {
			s.disp.publish(Placement{At: now, VM: vm, Flavor: flavor,
				Node: node, Failed: reason != "", Reason: reason})
		}
	}
	if s.disp != nil || s.opts.checkpointEvery > 0 {
		hooks.OnMigration = func(now sim.Time, vm, flavor, from, to string, kind core.MigrationKind) {
			s.migrations++
			if s.disp != nil {
				s.disp.publish(Migration{At: now, VM: vm, From: from, To: to, Kind: string(kind)})
			}
		}
	}
	if s.disp != nil || s.opts.checkpointEvery > 0 || s.opts.incremental {
		hooks.OnTick = s.onTick
	}
	var simulation *core.Simulation
	var err error
	if s.resume != nil {
		simulation, err = core.RestoreSimulation(s.cfg, hooks, s.resume)
	} else {
		simulation, err = core.NewSimulation(s.cfg, hooks)
	}
	if err != nil {
		s.fail(err)
		return err
	}
	s.sim = simulation
	// Cadences count from the run's starting point: t=0 for a cold build,
	// the snapshot time for a resumed one.
	base := sim.Time(0)
	if s.resume != nil {
		base = s.resume.At
	}
	s.nextCheckpoint = base + s.opts.checkpointEvery
	s.snapEvery = s.opts.snapshotEvery
	if s.snapEvery > 0 {
		s.nextSnapshot = base + s.snapEvery
	}
	if s.opts.incremental {
		s.pending = make(map[Stage][]Experiment)
		for _, exp := range Experiments() {
			if s.opts.incrementalIDs != nil && !s.opts.incrementalIDs[exp.ID] {
				continue
			}
			st := s.effectiveStage(exp.Stage)
			s.pending[st] = append(s.pending[st], exp)
		}
	}
	s.state = StateBuilt
	if s.disp != nil {
		s.disp.publish(SessionPhase{Name: "build", Start: buildStart, End: time.Now(),
			FromSim: base, ToSim: base})
	}
	return nil
}

// Start transitions the session to StateRunning and emits the initial
// Progress plus any incremental artifacts whose inputs are already final
// (static tables, the epoch population of tables 1 and 2).
func (s *Session) Start() error {
	if err := s.Build(); err != nil {
		return err
	}
	switch s.state {
	case StateBuilt:
	case StateRunning:
		return nil
	default:
		return fmt.Errorf("sapsim: Start on %s session", s.state)
	}
	s.state = StateRunning
	s.publishProgress()
	s.emitReadyArtifacts(StageStatic, StageEpoch)
	return nil
}

// Step advances the run by n host-telemetry ticks (n × Config.SampleEvery
// of simulated time), clamped to the horizon. It reports whether the run is
// complete. Pausing a run is simply not calling Step; the session holds its
// position indefinitely.
func (s *Session) Step(n int) (done bool, err error) {
	if n <= 0 {
		return false, errors.New("sapsim: Step of non-positive tick count")
	}
	if s.state == StateDone {
		return true, nil
	}
	if err := s.Start(); err != nil {
		return false, err
	}
	target := s.sim.Now() + sim.Time(n)*s.cfg.SampleEvery
	if err := s.advance(target); err != nil {
		return false, err
	}
	return s.state == StateDone, nil
}

// RunToCompletion drives the run to the horizon. Interleaving Step and
// RunToCompletion is byte-identical to one uninterrupted run.
func (s *Session) RunToCompletion() error {
	if s.state == StateDone {
		return nil
	}
	if err := s.Start(); err != nil {
		return err
	}
	return s.advance(s.cfg.Horizon())
}

// advance drives the engine to target simulated time, routing context
// cancellation and engine errors to the terminal states. With a snapshot
// cadence configured the span is segmented at each boundary: the engine is
// idle between segments, which is the only place a consistent snapshot can
// be captured. A boundary on the horizon itself is skipped — reaching the
// horizon finalizes the run.
func (s *Session) advance(target sim.Time) error {
	var interrupt func() error
	if ctx := s.opts.ctx; ctx != nil {
		interrupt = ctx.Err
	}
	if s.snapEvery > 0 {
		for s.nextSnapshot <= target && s.nextSnapshot < s.cfg.Horizon() {
			boundary := s.nextSnapshot
			if boundary > s.sim.Now() {
				if err := s.runSegment(boundary, interrupt); err != nil {
					return s.abort(err)
				}
			}
			var phaseStart time.Time
			if s.disp != nil {
				phaseStart = time.Now()
			}
			prof := s.sim.Profiler()
			mark := prof.Start()
			snap, err := s.sim.Snapshot()
			if err != nil {
				return s.abort(err)
			}
			prof.EndSpan(engprof.PhaseSnapshotEncode, mark, 1)
			if s.disp != nil {
				s.disp.publish(SessionPhase{Name: "snapshot-capture",
					Start: phaseStart, End: time.Now(), FromSim: boundary, ToSim: boundary})
			}
			s.lastSnapshot = snap
			s.publish(SnapshotReady{At: boundary, Snapshot: snap})
			enc := prof.PhaseCounter(engprof.PhaseSnapshotEncode)
			s.snapEvery = stretchSnapshotEvery(s.opts.snapshotEvery, s.snapEvery,
				enc.Nanos, prof.AccountedNanos())
			s.nextSnapshot = boundary + s.snapEvery
		}
	}
	if err := s.runSegment(target, interrupt); err != nil {
		return s.abort(err)
	}
	if s.sim.Done() {
		s.finish()
	}
	return nil
}

// runSegment advances the engine to target in one uninterrupted stretch,
// measured as a "run" phase when observers are registered. Zero-length
// segments (target already reached) publish nothing.
func (s *Session) runSegment(target sim.Time, interrupt func() error) error {
	if s.disp == nil {
		return s.sim.AdvanceTo(target, interrupt)
	}
	from := s.sim.Now()
	if target <= from {
		return s.sim.AdvanceTo(target, interrupt)
	}
	start := time.Now()
	err := s.sim.AdvanceTo(target, interrupt)
	s.disp.publish(SessionPhase{Name: "run", Start: start, End: time.Now(),
		FromSim: from, ToSim: s.sim.Now()})
	return err
}

// abort routes a driving-loop error to the matching terminal state and
// returns it.
func (s *Session) abort(err error) error {
	if s.opts.ctx != nil && errors.Is(err, s.opts.ctx.Err()) {
		s.cancel(err)
	} else {
		s.fail(err)
	}
	return err
}

// Result returns the finished run. It errors until the session reaches
// StateDone (use Step/RunToCompletion to get there), and returns the
// terminal error for canceled or failed sessions.
func (s *Session) Result() (*Result, error) {
	switch s.state {
	case StateDone:
		return s.sim.Result(), nil
	case StateCanceled, StateFailed:
		return nil, s.err
	default:
		return nil, fmt.Errorf("sapsim: Result on %s session", s.state)
	}
}

// Close releases the session's resources — it stops the observer dispatch
// goroutine after draining queued events. Close is idempotent and safe in
// any state; terminal transitions (done, canceled, failed) already close
// the dispatcher, so deferring Close costs nothing.
func (s *Session) Close() error {
	if s.disp != nil {
		s.disp.close()
	}
	return nil
}

// finish marks the session done: summary counters are final, remaining
// incremental artifacts emit, a terminal checkpoint snapshots the finished
// run (so supervisors persisting checkpoints always hold the horizon
// state), and the dispatcher drains.
func (s *Session) finish() {
	s.state = StateDone
	s.emitReadyArtifacts(StageStatic, StageEpoch, StageArrivals, StageComplete)
	if now := s.sim.Now(); s.opts.checkpointEvery > 0 &&
		(!s.hasCheckpoint || s.lastCheckpoint.At < now) {
		s.takeCheckpoint(now)
	}
	s.publish(ProfileReady{At: s.sim.Now(), Profile: s.sim.Result().Profile})
	s.publishProgress()
	if s.disp != nil {
		s.disp.close()
	}
}

// cancel marks the session canceled by its context.
func (s *Session) cancel(err error) {
	s.state = StateCanceled
	s.err = err
	s.publish(Error{At: s.Now(), Err: err})
	if s.disp != nil {
		s.disp.close()
	}
}

// fail marks the session failed on an internal error.
func (s *Session) fail(err error) {
	s.state = StateFailed
	s.err = err
	s.publish(Error{At: s.Now(), Err: err})
	if s.disp != nil {
		s.disp.close()
	}
}

// onTick is the per-sample heartbeat, invoked synchronously by the engine
// after each host-telemetry sweep.
func (s *Session) onTick(now sim.Time) {
	s.publishProgress()
	if every := s.opts.checkpointEvery; every > 0 && now >= s.nextCheckpoint {
		s.takeCheckpoint(now)
		s.nextCheckpoint = now + every
	}
	if len(s.pending[StageArrivals]) > 0 && now >= s.sim.LastArrival() {
		s.emitReadyArtifacts(StageArrivals)
	}
}

func (s *Session) publish(ev SessionEvent) {
	if s.disp != nil {
		s.disp.publish(ev)
	}
}

func (s *Session) publishProgress() {
	s.publish(Progress{
		Now:         s.sim.Now(),
		Horizon:     s.cfg.Horizon(),
		FiredEvents: s.sim.FiredEvents(),
		LiveVMs:     s.sim.LiveVMs(),
	})
}

func (s *Session) takeCheckpoint(now sim.Time) {
	res := s.sim.Result()
	stats := res.Scheduler.Stats()
	ckpt := Checkpoint{
		At:          now,
		FiredEvents: s.sim.FiredEvents(),
		LiveVMs:     s.sim.LiveVMs(),
		Scheduled:   stats.Scheduled,
		Failed:      stats.Failed,
		Retries:     stats.Retries,
		Resizes:     res.Resizes,
		Migrations:  s.migrations,
	}
	s.lastCheckpoint = ckpt
	s.hasCheckpoint = true
	s.publish(ckpt)
}

// effectiveStage narrows an experiment's declared stage to this run's
// configuration: resize churn — the background ResizeRate process or any
// scenario injector (a ResizeWave, or custom injectors calling
// Scheduler.Resize) — mutates live VMs' flavors, so the epoch population's
// size classification (tables 1-2) keeps moving until the horizon.
// Deferring those to completion keeps the streamed artifact byte-identical
// to the post-run computation in every configuration.
func (s *Session) effectiveStage(st Stage) Stage {
	if st == StageEpoch && (s.cfg.ResizeRate > 0 || len(s.cfg.Injectors) > 0) {
		return StageComplete
	}
	return st
}

// emitReadyArtifacts computes and publishes the pending incremental
// artifacts of the given stages. Inputs for these stages are final at call
// time, so the emitted artifact is byte-identical to computing it from the
// finished Result.
func (s *Session) emitReadyArtifacts(stages ...Stage) {
	if !s.opts.incremental {
		return
	}
	now := s.sim.Now()
	res := s.sim.Result()
	for _, st := range stages {
		list := s.pending[st]
		if len(list) == 0 {
			continue
		}
		delete(s.pending, st)
		for _, exp := range list {
			art, err := exp.Compute(res)
			if err != nil {
				s.publish(Error{At: now, Err: fmt.Errorf("%s: %w", exp.ID, err)})
				continue
			}
			s.publish(ArtifactReady{At: now, Artifact: art})
		}
	}
}

// Run executes an experiment in one blocking call — the original monolith,
// now a thin compatibility wrapper over the Session lifecycle. Artifacts
// produced through Run and through an explicitly stepped Session are
// byte-identical (pinned by the golden harness).
func Run(cfg Config) (*Result, error) {
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if err := s.RunToCompletion(); err != nil {
		return nil, err
	}
	return s.Result()
}

// dispatcher fans session events out to observers from a dedicated
// goroutine. The publishing side appends under a mutex and never blocks on
// observer speed; consecutive Progress events coalesce so a slow consumer
// sees fresh state instead of an ever-growing backlog.
type dispatcher struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []SessionEvent
	closed bool

	observers []Observer
	done      chan struct{}
}

func newDispatcher(observers []Observer) *dispatcher {
	d := &dispatcher{observers: observers, done: make(chan struct{})}
	d.cond = sync.NewCond(&d.mu)
	go d.loop()
	return d
}

// publish enqueues an event. It never blocks beyond the queue mutex, which
// the dispatch loop holds only to swap queues — observer callbacks run
// outside the lock.
func (d *dispatcher) publish(ev SessionEvent) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	if _, isProgress := ev.(Progress); isProgress && len(d.queue) > 0 {
		if _, tailProgress := d.queue[len(d.queue)-1].(Progress); tailProgress {
			d.queue[len(d.queue)-1] = ev
			d.cond.Signal()
			return
		}
	}
	d.queue = append(d.queue, ev)
	d.cond.Signal()
}

func (d *dispatcher) loop() {
	for {
		d.mu.Lock()
		for len(d.queue) == 0 && !d.closed {
			d.cond.Wait()
		}
		batch := d.queue
		d.queue = nil
		closed := d.closed
		d.mu.Unlock()

		for _, ev := range batch {
			for _, obs := range d.observers {
				obs.OnSessionEvent(ev)
			}
		}
		if closed && len(batch) == 0 {
			close(d.done)
			return
		}
	}
}

// close drains queued events to the observers and stops the dispatch
// goroutine. Idempotent.
func (d *dispatcher) close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		<-d.done
		return
	}
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	<-d.done
}
