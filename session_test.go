package sapsim

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"sapsim/internal/core"
	"sapsim/internal/scenario"
	"sapsim/internal/sim"
)

// sessionTestConfig is a fast run: ~18 hosts, 250 VMs, 2 days.
func sessionTestConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.Scale = 0.01
	cfg.VMs = 250
	cfg.Days = 2
	cfg.SampleEvery = 30 * sim.Minute
	cfg.VMSampleEvery = 3 * sim.Hour
	return cfg
}

// collector is a thread-safe observer that records every event.
type collector struct {
	mu     sync.Mutex
	events []SessionEvent
}

func (c *collector) OnSessionEvent(ev SessionEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
}

func (c *collector) snapshot() []SessionEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SessionEvent(nil), c.events...)
}

func TestSessionLifecycleStates(t *testing.T) {
	s, err := NewSession(sessionTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.State() != StateNew {
		t.Fatalf("fresh session state = %v, want new", s.State())
	}
	if _, err := s.Result(); err == nil {
		t.Fatal("Result on a new session should error")
	}
	if err := s.Build(); err != nil {
		t.Fatal(err)
	}
	if s.State() != StateBuilt {
		t.Fatalf("after Build state = %v, want built", s.State())
	}
	if err := s.Build(); err != nil {
		t.Fatalf("Build is idempotent: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if s.State() != StateRunning {
		t.Fatalf("after Start state = %v, want running", s.State())
	}
	done, err := s.Step(1)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("one tick should not complete a 2-day run")
	}
	if want := 30 * sim.Minute; s.Now() != want {
		t.Fatalf("after Step(1) Now = %v, want %v", s.Now(), want)
	}
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if s.State() != StateDone {
		t.Fatalf("state = %v, want done", s.State())
	}
	if s.Now() != s.Horizon() {
		t.Fatalf("Now = %v, want horizon %v", s.Now(), s.Horizon())
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.VMs) == 0 || res.SchedStats.Scheduled == 0 {
		t.Fatal("finished session has an empty result")
	}
	// Completed runs are stable under further driving.
	if done, err := s.Step(1); err != nil || !done {
		t.Fatalf("Step after done = (%v, %v), want (true, nil)", done, err)
	}
}

// TestSessionStepEquivalence: a run split across Step boundaries is
// byte-identical to the one-shot Run wrapper — same telemetry volume, same
// scheduler counters, same rendered artifacts.
func TestSessionStepEquivalence(t *testing.T) {
	cfg := sessionTestConfig(7)
	blocking, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Uneven segments: 3 ticks, 17 ticks, then the rest.
	for _, n := range []int{3, 17} {
		if _, err := s.Step(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	stepped, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}

	if got, want := len(stepped.VMs), len(blocking.VMs); got != want {
		t.Errorf("VM count %d != %d", got, want)
	}
	if got, want := stepped.Store.SampleCount(), blocking.Store.SampleCount(); got != want {
		t.Errorf("sample count %d != %d", got, want)
	}
	if got, want := stepped.Events.Len(), blocking.Events.Len(); got != want {
		t.Errorf("event count %d != %d", got, want)
	}
	if stepped.SchedStats.Scheduled != blocking.SchedStats.Scheduled ||
		stepped.SchedStats.Retries != blocking.SchedStats.Retries ||
		stepped.SchedStats.Failed != blocking.SchedStats.Failed {
		t.Errorf("scheduler stats diverged: %+v != %+v", stepped.SchedStats, blocking.SchedStats)
	}
	if stepped.DRSMigrations != blocking.DRSMigrations {
		t.Errorf("DRS migrations %d != %d", stepped.DRSMigrations, blocking.DRSMigrations)
	}
	for _, id := range []string{"fig9", "fig14a", "table1", "fig15a"} {
		exp, _ := ExperimentByID(id)
		a, err := exp.Compute(stepped)
		if err != nil {
			t.Fatal(err)
		}
		b, err := exp.Compute(blocking)
		if err != nil {
			t.Fatal(err)
		}
		if a.Text != b.Text {
			t.Errorf("%s artifact drifted across Step boundaries", id)
		}
	}
}

// TestSessionCancellation: a canceled context unwinds the run from the
// current tick, the driving call returns ctx.Err(), and the observer
// pipeline is drained and shut down (resources released) before it does.
func TestSessionCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	col := &collector{}
	s, err := NewSession(sessionTestConfig(3), WithContext(ctx), WithObserver(col))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Step(2); err != nil {
		t.Fatal(err)
	}
	before := s.Now()
	cancel()
	err = s.RunToCompletion()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunToCompletion after cancel = %v, want context.Canceled", err)
	}
	if s.State() != StateCanceled {
		t.Fatalf("state = %v, want canceled", s.State())
	}
	if !errors.Is(s.Err(), context.Canceled) {
		t.Fatalf("session Err = %v", s.Err())
	}
	if s.Now() != before {
		t.Fatalf("clock advanced after cancellation: %v -> %v", before, s.Now())
	}
	if s.Now() >= s.Horizon() {
		t.Fatal("canceled session should stop short of the horizon")
	}
	if _, err := s.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Result after cancel = %v, want context.Canceled", err)
	}
	// cancel() closed the dispatcher after draining: the terminal Error
	// event is already visible without any further synchronization.
	var sawErr bool
	for _, ev := range col.snapshot() {
		if e, ok := ev.(Error); ok && errors.Is(e.Err, context.Canceled) {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("observer never saw the cancellation Error event")
	}
	// Terminal sessions refuse further driving.
	if _, err := s.Step(1); err == nil {
		t.Fatal("Step on a canceled session should error")
	}
}

// TestSessionCancelsWithinOneTick: cancellation latency is bounded by one
// engine event, not by the remaining window. A pre-canceled context must
// stop the run at the position it was in.
func TestSessionCancelsWithinOneTick(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := NewSession(sessionTestConfig(4), WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunToCompletion(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.Now() != 0 {
		t.Fatalf("pre-canceled run advanced to %v", s.Now())
	}
}

// TestObserverBackpressureNeverDeadlocks: an observer far slower than the
// engine must not stall the run — publishes never block on consumption, and
// Progress events coalesce instead of queueing without bound. Run with
// -race; the engine goroutine and dispatch goroutine share the queue.
func TestObserverBackpressureNeverDeadlocks(t *testing.T) {
	var mu sync.Mutex
	var progresses, others int
	var last Progress
	slow := ObserverFunc(func(ev SessionEvent) {
		time.Sleep(200 * time.Microsecond) // ~100x slower than event production
		mu.Lock()
		defer mu.Unlock()
		if p, ok := ev.(Progress); ok {
			progresses++
			last = p
		} else {
			others++
		}
	})
	cfg := sessionTestConfig(5)
	s, err := NewSession(cfg, WithObserver(slow))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	done := make(chan error, 1)
	go func() { done <- s.RunToCompletion() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("session deadlocked behind a slow observer")
	}
	if _, err := s.Result(); err != nil {
		t.Fatal(err)
	}
	// Completion closed the dispatcher after draining, so the final
	// Progress (at the horizon) has been delivered despite the slow
	// consumer; coalescing means the count may be far below the tick count.
	mu.Lock()
	defer mu.Unlock()
	if progresses == 0 {
		t.Fatal("no progress events delivered")
	}
	if last.Now != cfg.Horizon() {
		t.Fatalf("last delivered progress at %v, want horizon %v", last.Now, cfg.Horizon())
	}
	// Raw production is one Progress per tick plus the Start and finish
	// bookends; coalescing can only shrink that.
	ticks := int(cfg.Horizon()/cfg.SampleEvery) + 1
	if progresses > ticks+2 {
		t.Fatalf("%d progress events for %d ticks", progresses, ticks)
	}
}

// TestSessionProgressStream: a full-speed observer sees a monotone progress
// stream ending exactly at the horizon, plus placement and migration
// events.
func TestSessionProgressStream(t *testing.T) {
	col := &collector{}
	cfg := sessionTestConfig(6)
	s, err := NewSession(cfg, WithObserver(col))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	var lastNow sim.Time = -1
	var placements, migrations int
	for _, ev := range col.snapshot() {
		switch e := ev.(type) {
		case Progress:
			if e.Now < lastNow {
				t.Fatalf("progress went backwards: %v after %v", e.Now, lastNow)
			}
			lastNow = e.Now
		case Placement:
			placements++
			if e.VM == "" || e.Flavor == "" {
				t.Fatalf("malformed placement %+v", e)
			}
			if !e.Failed && e.Node == "" {
				t.Fatalf("successful placement without node: %+v", e)
			}
		case Migration:
			migrations++
			if e.From == "" || e.To == "" {
				t.Fatalf("malformed migration %+v", e)
			}
		}
	}
	if lastNow != cfg.Horizon() {
		t.Fatalf("final progress at %v, want %v", lastNow, cfg.Horizon())
	}
	// In-window creations (plus failures) stream as placements.
	wantPlacements := res.Events.CountByType()["create"] + res.Events.CountByType()["schedule_failed"]
	if placements != wantPlacements {
		t.Errorf("streamed %d placements, event log has %d", placements, wantPlacements)
	}
	if migrations != res.DRSMigrations+res.CrossBBMoves {
		t.Errorf("streamed %d migrations, result counted %d", migrations, res.DRSMigrations+res.CrossBBMoves)
	}
}

// TestSessionIncrementalArtifacts: prefix-stage experiments emit before the
// horizon, everything emits by completion, and every streamed artifact is
// byte-identical to recomputing it from the finished Result. Resize churn
// is disabled so the epoch classification (tables 1-2) is genuinely final
// at t=0; TestSessionIncrementalArtifactsWithResizes covers the deferral.
func TestSessionIncrementalArtifacts(t *testing.T) {
	col := &collector{}
	cfg := sessionTestConfig(8)
	cfg.ResizeRate = 0
	s, err := NewSession(cfg, WithObserver(col), WithIncrementalArtifacts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	arrived := map[string]ArtifactReady{}
	for _, ev := range col.snapshot() {
		if a, ok := ev.(ArtifactReady); ok {
			if _, dup := arrived[a.Artifact.ID]; dup {
				t.Fatalf("artifact %s emitted twice", a.Artifact.ID)
			}
			arrived[a.Artifact.ID] = a
		}
	}
	if len(arrived) != len(Experiments()) {
		t.Fatalf("streamed %d artifacts, want %d", len(arrived), len(Experiments()))
	}
	for _, exp := range Experiments() {
		a, ok := arrived[exp.ID]
		if !ok {
			t.Errorf("%s never emitted", exp.ID)
			continue
		}
		switch exp.Stage {
		case StageStatic, StageEpoch:
			if a.At != 0 {
				t.Errorf("%s emitted at %v, want at Start (t=0)", exp.ID, a.At)
			}
		case StageComplete:
			if a.At != cfg.Horizon() {
				t.Errorf("%s emitted at %v, want horizon", exp.ID, a.At)
			}
		}
		want, err := exp.Compute(res)
		if err != nil {
			t.Fatal(err)
		}
		if a.Artifact.Text != want.Text {
			t.Errorf("%s streamed artifact differs from post-run computation", exp.ID)
		}
	}
}

// TestSessionIncrementalArtifactsWithResizes: with resize churn enabled the
// epoch tables' inputs stay fluid (live VMs change flavors), so their
// emission defers to the horizon — and still matches the final Result.
func TestSessionIncrementalArtifactsWithResizes(t *testing.T) {
	col := &collector{}
	cfg := sessionTestConfig(8) // default ResizeRate > 0
	if cfg.ResizeRate <= 0 {
		t.Fatal("test requires resize churn")
	}
	s, err := NewSession(cfg, WithObserver(col), WithIncrementalArtifacts("table1", "table2", "fig15a"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]ArtifactReady{}
	for _, ev := range col.snapshot() {
		if a, ok := ev.(ArtifactReady); ok {
			got[a.Artifact.ID] = a
		}
	}
	if len(got) != 3 {
		t.Fatalf("streamed %d artifacts, want the 3 requested", len(got))
	}
	for _, id := range []string{"table1", "table2"} {
		a, ok := got[id]
		if !ok {
			t.Fatalf("%s never emitted", id)
		}
		if a.At != cfg.Horizon() {
			t.Errorf("%s emitted at %v; resize churn should defer it to the horizon", id, a.At)
		}
		exp, _ := ExperimentByID(id)
		want, err := exp.Compute(res)
		if err != nil {
			t.Fatal(err)
		}
		if a.Artifact.Text != want.Text {
			t.Errorf("%s streamed artifact differs from post-run computation", id)
		}
	}
	// Lifetime records snapshot the flavor at placement, so fig15 still
	// streams at the last arrival even with resize churn.
	if a := got["fig15a"]; a.At >= cfg.Horizon() {
		t.Errorf("fig15a emitted at %v, want before the horizon", a.At)
	}
}

// TestSessionIncrementalArtifactsWithInjectors: scenario injectors can
// resize epoch VMs mid-run (e.g. a ResizeWave), so the epoch tables defer
// to the horizon whenever injectors are present — and still match the
// final Result byte-for-byte.
func TestSessionIncrementalArtifactsWithInjectors(t *testing.T) {
	col := &collector{}
	cfg := sessionTestConfig(8)
	cfg.ResizeRate = 0
	cfg.Injectors = []core.Injector{scenario.ResizeWave{At: 6 * sim.Hour, Fraction: 0.2}}
	s, err := NewSession(cfg, WithObserver(col), WithIncrementalArtifacts("table1", "table2"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Resizes == 0 {
		t.Fatal("resize wave did not fire; test exercises nothing")
	}
	got := map[string]ArtifactReady{}
	for _, ev := range col.snapshot() {
		if a, ok := ev.(ArtifactReady); ok {
			got[a.Artifact.ID] = a
		}
	}
	for _, id := range []string{"table1", "table2"} {
		a, ok := got[id]
		if !ok {
			t.Fatalf("%s never emitted", id)
		}
		if a.At != cfg.Horizon() {
			t.Errorf("%s emitted at %v; injectors must defer it to the horizon", id, a.At)
		}
		exp, _ := ExperimentByID(id)
		want, err := exp.Compute(res)
		if err != nil {
			t.Fatal(err)
		}
		if a.Artifact.Text != want.Text {
			t.Errorf("%s streamed artifact differs from post-run computation", id)
		}
	}
}

// TestSessionCheckpoints: the checkpoint cadence produces monotone
// snapshots and LastCheckpoint tracks the latest one.
func TestSessionCheckpoints(t *testing.T) {
	col := &collector{}
	cfg := sessionTestConfig(9)
	s, err := NewSession(cfg, WithObserver(col), WithCheckpointEvery(6*sim.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	var ckpts []Checkpoint
	for _, ev := range col.snapshot() {
		if c, ok := ev.(Checkpoint); ok {
			ckpts = append(ckpts, c)
		}
	}
	// 2 days at a 6-hour cadence: 8 checkpoints, first at the cadence mark.
	if len(ckpts) < 6 {
		t.Fatalf("got %d checkpoints, want ~8", len(ckpts))
	}
	for i := 1; i < len(ckpts); i++ {
		if ckpts[i].At <= ckpts[i-1].At {
			t.Fatalf("checkpoint times not monotone: %v then %v", ckpts[i-1].At, ckpts[i].At)
		}
		if ckpts[i].FiredEvents < ckpts[i-1].FiredEvents {
			t.Fatalf("fired-event counter went backwards")
		}
	}
	last, ok := s.LastCheckpoint()
	if !ok {
		t.Fatal("LastCheckpoint empty after run")
	}
	if last != ckpts[len(ckpts)-1] {
		t.Fatalf("LastCheckpoint %+v != final streamed %+v", last, ckpts[len(ckpts)-1])
	}
}

func TestSessionOptionValidation(t *testing.T) {
	if _, err := NewSession(sessionTestConfig(1), WithPolicy("no-such-policy")); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := NewSession(sessionTestConfig(1), WithContext(nil)); err == nil {
		t.Error("nil context accepted")
	}
	if _, err := NewSession(sessionTestConfig(1), WithObserver(nil)); err == nil {
		t.Error("nil observer accepted")
	}
	if _, err := NewSession(sessionTestConfig(1), WithCheckpointEvery(0)); err == nil {
		t.Error("zero checkpoint interval accepted")
	}
	if _, err := NewSession(sessionTestConfig(1), WithIncrementalArtifacts("nope")); err == nil {
		t.Error("unknown incremental artifact ID accepted")
	}
	bad := sessionTestConfig(1)
	bad.Days = 0
	if _, err := NewSession(bad); err == nil {
		t.Error("invalid config accepted")
	}
	s, err := NewSession(sessionTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Step(0); err == nil {
		t.Error("Step(0) accepted")
	}
}

func TestPolicyRegistry(t *testing.T) {
	for _, name := range []string{PolicyProduction, PolicySpread, PolicyPack, PolicyContentionAware} {
		p, ok := PolicyByName(name)
		if !ok {
			t.Fatalf("builtin policy %q not registered", name)
		}
		if p.Description == "" || p.Apply == nil {
			t.Errorf("policy %q incomplete", name)
		}
	}
	if _, ok := PolicyByName("nope"); ok {
		t.Error("unknown policy found")
	}
	ps := Policies()
	if len(ps) < 4 {
		t.Fatalf("registry has %d policies, want >= 4", len(ps))
	}
	if ps[0].Name != PolicyProduction {
		t.Errorf("Policies()[0] = %s, want the production default first", ps[0].Name)
	}
	// WithPolicy actually mutates the session's config copy.
	s, err := NewSession(sessionTestConfig(1), WithPolicy(PolicyContentionAware))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.Config().ContentionFeed {
		t.Error("contention-aware policy did not enable the contention feed")
	}
	// The base config the caller holds is untouched.
	if sessionTestConfig(1).ContentionFeed {
		t.Error("policy mutated the shared base config")
	}
}

// TestExperimentCatalogCoherent: the lookup map and the ordered slice are
// built from the same catalog and cannot drift.
func TestExperimentCatalogCoherent(t *testing.T) {
	list := Experiments()
	for i, exp := range list {
		got, ok := ExperimentByID(exp.ID)
		if !ok {
			t.Fatalf("experiment %d (%s) missing from index", i, exp.ID)
		}
		if got.ID != exp.ID || got.Title != exp.Title || got.Stage != exp.Stage {
			t.Fatalf("index entry for %s differs from slice entry", exp.ID)
		}
	}
	// Stages partition as documented.
	stages := map[string]Stage{
		"table1": StageEpoch, "table2": StageEpoch,
		"table3": StageStatic, "table4": StageStatic, "table5": StageStatic,
		"fig15a": StageArrivals, "fig15b": StageArrivals,
	}
	for _, exp := range list {
		want, special := stages[exp.ID]
		if !special {
			want = StageComplete
		}
		if exp.Stage != want {
			t.Errorf("%s stage = %v, want %v", exp.ID, exp.Stage, want)
		}
	}
	// Mutating the returned slice must not poison the catalog.
	list[0].ID = "mutated"
	if fresh := Experiments(); fresh[0].ID == "mutated" {
		t.Fatal("Experiments returns a shared slice")
	}
}

func TestRunWrapperErrors(t *testing.T) {
	bad := sessionTestConfig(1)
	bad.VMs = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("Run accepted an invalid config")
	}
	if !strings.Contains(errString(func() error { _, err := Run(bad); return err }()), "core:") {
		t.Error("validation error should surface from core")
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
