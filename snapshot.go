package sapsim

import (
	"errors"
	"fmt"
	"io"

	"sapsim/internal/core"
	"sapsim/internal/sim"
	"sapsim/internal/snapshot"
)

// Snapshot is the complete mid-run state of a simulation, captured at an
// engine-idle boundary. It is internal/snapshot.Snapshot re-exported: a
// versioned, digest-stamped value that serializes with EncodeSnapshot and
// restores through ResumeFromSnapshot or Fork.
type Snapshot = snapshot.Snapshot

// Injector is a scenario hook wired into the assembled simulation. It is
// core.Injector re-exported; the implementations live in internal/scenario.
type Injector = core.Injector

// SnapshotFormatVersion is the serialization format version this build
// writes and accepts. DecodeSnapshot rejects other versions with
// ErrSnapshotVersion.
const SnapshotFormatVersion = snapshot.FormatVersion

// ErrSnapshotCorrupt reports a snapshot stream that failed its integrity
// checks: bad magic, digest mismatch, truncation, or a malformed payload.
var ErrSnapshotCorrupt = snapshot.ErrCorrupt

// ErrSnapshotVersion reports a structurally sound snapshot written by an
// incompatible format version.
var ErrSnapshotVersion = snapshot.ErrVersion

// EncodeSnapshot serializes a snapshot: framed magic, format version,
// SHA-256 digest stamp, and gob payload. Bit flips and truncation are
// detectable without decoding.
func EncodeSnapshot(w io.Writer, s *Snapshot) error { return snapshot.Encode(w, s) }

// DecodeSnapshot reads and verifies a snapshot stream. Corruption surfaces
// as ErrSnapshotCorrupt, a foreign format version as ErrSnapshotVersion.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) { return snapshot.Decode(r) }

// EncodeSnapshotBytes is EncodeSnapshot into a fresh byte slice.
func EncodeSnapshotBytes(s *Snapshot) ([]byte, error) { return snapshot.EncodeBytes(s) }

// DecodeSnapshotBytes is DecodeSnapshot from a byte slice.
func DecodeSnapshotBytes(b []byte) (*Snapshot, error) { return snapshot.DecodeBytes(b) }

// SnapshotDigest returns the hex SHA-256 of an encoded snapshot — the
// content address the artifact store keeps the blob under.
func SnapshotDigest(b []byte) string { return snapshot.Digest(b) }

// SnapshotReady delivers a periodic mid-run snapshot, emitted at the
// WithSnapshotEvery cadence. The snapshot is fully detached from the live
// run: observers may encode or restore it at any time.
type SnapshotReady struct {
	At       sim.Time
	Snapshot *Snapshot
}

func (SnapshotReady) sessionEvent() {}

// WithSnapshotEvery captures a mid-run snapshot every interval of simulated
// time, delivered through SnapshotReady events and Session.LastSnapshot.
// The run is segmented at each boundary so capture happens with the engine
// idle; a boundary landing exactly on the horizon is skipped (the finished
// run is fully described by its Result).
func WithSnapshotEvery(every sim.Time) Option {
	return func(o *sessionOptions) error {
		if every <= 0 {
			return errors.New("sapsim: non-positive snapshot interval")
		}
		o.snapshotEvery = every
		return nil
	}
}

// Snapshot captures the session's complete current state on demand. It is
// valid on a built or running session between driving calls (Step,
// RunToCompletion) — the engine is idle there — and errors once the session
// is done, canceled, or failed. Building a new session from the returned
// snapshot (ResumeFromSnapshot, Fork) continues the run bit-identically.
func (s *Session) Snapshot() (*Snapshot, error) {
	switch s.state {
	case StateNew:
		if err := s.Build(); err != nil {
			return nil, err
		}
	case StateBuilt, StateRunning:
	default:
		return nil, fmt.Errorf("sapsim: Snapshot on %s session", s.state)
	}
	return s.sim.Snapshot()
}

// LastSnapshot returns the most recent periodic snapshot, if any. On-demand
// Snapshot calls do not update it.
func (s *Session) LastSnapshot() (*Snapshot, bool) {
	return s.lastSnapshot, s.lastSnapshot != nil
}

// Name reports the branch name for a session produced by Fork, empty
// otherwise.
func (s *Session) Name() string { return s.name }

// ResumeFromSnapshot builds a session that continues a captured run from
// its snapshot instead of t=0. cfg must re-assemble the captured run
// deterministically: same seed, scale, and topology, and its first
// snap.NumInjectors injectors must be the captured ones (Build enforces the
// snapshot's config fingerprint). Injectors appended beyond the captured
// set are injected fresh at the snapshot time — that is the branching
// mechanism Fork wraps.
//
// A resumed session reproduces the uninterrupted run exactly: artifacts
// computed from its Result are byte-identical to running cfg from t=0.
func ResumeFromSnapshot(cfg Config, snap *Snapshot, opts ...Option) (*Session, error) {
	if snap == nil {
		return nil, errors.New("sapsim: ResumeFromSnapshot from nil snapshot")
	}
	s, err := NewSession(cfg, opts...)
	if err != nil {
		return nil, err
	}
	s.resume = snap
	return s, nil
}

// Branch names one speculative continuation of a snapshot: the base
// config's injectors plus the branch's own, injected at the snapshot time.
// An empty injector list replays the base run unchanged.
type Branch struct {
	Name      string
	Injectors []Injector
}

// Fork builds one independent session per branch from a single snapshot —
// speculative scenario branching: run the shared prefix once, then explore
// divergent futures from the same warm state. Branch sessions share nothing
// but the immutable snapshot; they may be driven sequentially or from
// separate goroutines. The options apply to every branch.
//
// Branch divergence comes from the appended injectors (including their
// salts); the workload, topology, and everything already in flight at the
// snapshot are common to all branches by construction.
func Fork(cfg Config, snap *Snapshot, branches []Branch, opts ...Option) ([]*Session, error) {
	if snap == nil {
		return nil, errors.New("sapsim: Fork from nil snapshot")
	}
	if len(branches) == 0 {
		return nil, errors.New("sapsim: Fork with no branches")
	}
	out := make([]*Session, 0, len(branches))
	for i, b := range branches {
		bcfg := cfg
		if len(b.Injectors) > 0 {
			bcfg.Injectors = append(append([]Injector{}, cfg.Injectors...), b.Injectors...)
		}
		bs, err := ResumeFromSnapshot(bcfg, snap, opts...)
		if err != nil {
			return nil, fmt.Errorf("sapsim: fork branch %d (%s): %w", i, b.Name, err)
		}
		bs.name = b.Name
		out = append(out, bs)
	}
	return out, nil
}
