package sapsim

import (
	"testing"
)

// benchMidpointSnapshot drives the full-cell benchmark config to the middle
// of its horizon and captures one snapshot — the state a dispatched worker
// would ship on its heartbeat. Built once per benchmark, outside the timer.
func benchMidpointSnapshot(b *testing.B) (Config, *Snapshot) {
	b.Helper()
	cfg := fullCellConfig(42)
	s, err := NewSession(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	// 144 ticks x 15 min = 36h of the 72h horizon.
	if _, err := s.Step(144); err != nil {
		b.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	return cfg, snap
}

// BenchmarkSnapshotEncode measures serializing a midpoint full-cell
// snapshot to its wire form — the cost a worker pays on the session's
// event-dispatch goroutine at every snapshot boundary.
func BenchmarkSnapshotEncode(b *testing.B) {
	_, snap := benchMidpointSnapshot(b)
	blob, err := EncodeSnapshotBytes(snap)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeSnapshotBytes(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRestore measures the warm-boot path end to end: decode the wire
// form, rehydrate a session from it, and build to the point where Step
// could continue. This is what a re-booked cell pays instead of re-running
// the whole prefix from t=0.
func BenchmarkRestore(b *testing.B) {
	cfg, snap := benchMidpointSnapshot(b)
	blob, err := EncodeSnapshotBytes(snap)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decoded, err := DecodeSnapshotBytes(blob)
		if err != nil {
			b.Fatal(err)
		}
		s, err := ResumeFromSnapshot(cfg, decoded)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Build(); err != nil {
			b.Fatal(err)
		}
		if s.Now() != snap.At {
			b.Fatalf("restored to %v, want %v", s.Now(), snap.At)
		}
		s.Close()
	}
}
