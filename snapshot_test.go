package sapsim

import (
	"errors"
	"reflect"
	"testing"

	"sapsim/internal/core"
	"sapsim/internal/scenario"
	"sapsim/internal/sim"
)

// snapshotTestConfig exercises the snapshot-relevant machinery: an injector
// with recovery closures plus the default DRS and resize churn.
func snapshotTestConfig(seed uint64) Config {
	cfg := sessionTestConfig(seed)
	cfg.Injectors = []core.Injector{
		scenario.HostFailures{At: 8 * sim.Hour, Fraction: 0.1, Recover: 6 * sim.Hour, Salt: 3},
	}
	return cfg
}

// TestSessionSnapshotCadence: WithSnapshotEvery segments the run and emits
// one detached snapshot per boundary, skipping the horizon itself;
// LastSnapshot tracks the newest one.
func TestSessionSnapshotCadence(t *testing.T) {
	col := &collector{}
	cfg := snapshotTestConfig(11)
	every := 6 * sim.Hour
	s, err := NewSession(cfg, WithObserver(col), WithSnapshotEvery(every))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	var snaps []SnapshotReady
	for _, ev := range col.snapshot() {
		if sr, ok := ev.(SnapshotReady); ok {
			snaps = append(snaps, sr)
		}
	}
	// 2 days at a 6-hour cadence: boundaries at 6h..42h; 48h is the horizon
	// and is skipped.
	want := int(cfg.Horizon()/every) - 1
	if len(snaps) != want {
		t.Fatalf("got %d snapshots, want %d", len(snaps), want)
	}
	for i, sr := range snaps {
		if at := sim.Time(i+1) * every; sr.At != at || sr.Snapshot.At != at {
			t.Fatalf("snapshot %d at %v/%v, want %v", i, sr.At, sr.Snapshot.At, at)
		}
	}
	last, ok := s.LastSnapshot()
	if !ok || last != snaps[len(snaps)-1].Snapshot {
		t.Fatal("LastSnapshot does not track the final periodic snapshot")
	}
	// The session itself still finished normally.
	if _, err := s.Result(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionResumeEquivalence: snapshot a session mid-run, round-trip the
// snapshot through its wire form, resume a new session from it — every
// artifact digest must match the uninterrupted run.
func TestSessionResumeEquivalence(t *testing.T) {
	cfg := snapshotTestConfig(12)
	coldRes, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coldDigests, err := ArtifactDigests(coldRes)
	if err != nil {
		t.Fatal(err)
	}

	warm, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if _, err := warm.Step(24); err != nil { // 12h of a 48h run
		t.Fatal(err)
	}
	snap, err := warm.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeSnapshotBytes(snap)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshotBytes(blob)
	if err != nil {
		t.Fatal(err)
	}

	resumed, err := ResumeFromSnapshot(cfg, decoded)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if err := resumed.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if now := resumed.Now(); now != cfg.Horizon() {
		t.Fatalf("resumed session ended at %v, want horizon %v", now, cfg.Horizon())
	}
	res, err := resumed.Result()
	if err != nil {
		t.Fatal(err)
	}
	digests, err := ArtifactDigests(res)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(digests, coldDigests) {
		for id, d := range digests {
			if coldDigests[id] != d {
				t.Errorf("artifact %s diverged after resume", id)
			}
		}
		t.Fatal("resumed run is not byte-identical to the cold run")
	}
}

// TestSessionFork: one snapshot, two speculative branches. The calm branch
// reproduces the base run exactly; the outage branch diverges.
func TestSessionFork(t *testing.T) {
	cfg := sessionTestConfig(13)
	coldRes, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coldDigests, err := ArtifactDigests(coldRes)
	if err != nil {
		t.Fatal(err)
	}

	warm, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if _, err := warm.Step(32); err != nil { // 16h of a 48h run
		t.Fatal(err)
	}
	snap, err := warm.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	branches, err := Fork(cfg, snap, []Branch{
		{Name: "calm"},
		{Name: "az-outage", Injectors: []Injector{
			scenario.AZOutage{At: 20 * sim.Hour, AZIndex: 0, Duration: 4 * sim.Hour},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*Result, len(branches))
	for i, b := range branches {
		if err := b.RunToCompletion(); err != nil {
			t.Fatalf("branch %s: %v", b.Name(), err)
		}
		if results[i], err = b.Result(); err != nil {
			t.Fatalf("branch %s: %v", b.Name(), err)
		}
		b.Close()
	}
	if branches[0].Name() != "calm" || branches[1].Name() != "az-outage" {
		t.Fatal("branch names lost")
	}
	calmDigests, err := ArtifactDigests(results[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(calmDigests, coldDigests) {
		t.Fatal("calm branch diverged from the base run")
	}
	if results[0].Events.Len() == results[1].Events.Len() {
		t.Fatal("outage branch produced the same event stream as the calm branch")
	}
}

func TestSnapshotOptionValidation(t *testing.T) {
	cfg := sessionTestConfig(14)
	if _, err := NewSession(cfg, WithSnapshotEvery(0)); err == nil {
		t.Error("zero snapshot interval accepted")
	}
	if _, err := ResumeFromSnapshot(cfg, nil); err == nil {
		t.Error("nil snapshot accepted by ResumeFromSnapshot")
	}
	if _, err := Fork(cfg, nil, []Branch{{Name: "x"}}); err == nil {
		t.Error("nil snapshot accepted by Fork")
	}

	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	snap, err := s.Snapshot() // builds lazily, snapshot at t=0
	if err != nil {
		t.Fatal(err)
	}
	if snap.At != 0 {
		t.Fatalf("fresh-session snapshot at %v, want 0", snap.At)
	}
	if _, err := Fork(cfg, snap, nil); err == nil {
		t.Error("Fork with no branches accepted")
	}
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot(); err == nil {
		t.Error("Snapshot on a done session accepted")
	}

	// A mismatching config is refused at Build through the fingerprint.
	other := cfg
	other.Seed = 99
	bad, err := ResumeFromSnapshot(other, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if err := bad.Build(); err == nil {
		t.Error("resume under a different seed accepted")
	}

	// Corruption surfaces as ErrSnapshotCorrupt.
	blob, err := EncodeSnapshotBytes(snap)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0x40
	if _, err := DecodeSnapshotBytes(blob); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("bit-flipped snapshot decoded: %v", err)
	}
	if _, err := DecodeSnapshotBytes(blob[:60]); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("truncated snapshot decoded: %v", err)
	}
}
